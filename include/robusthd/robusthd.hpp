#pragma once
// Umbrella header for the RobustHD library.
//
// RobustHD is a reproduction of "Adaptive Neural Recovery for Highly Robust
// Brain-like Representation" (DAC 2022): a hyperdimensional learning system
// that is inherently robust to memory bit flips and repairs its own model
// at runtime, plus the substrates its evaluation needs (fault injection,
// fixed-point baselines, a digital PIM simulator, DRAM/ECC models).

#include "robusthd/adversary/attacks.hpp"
#include "robusthd/adversary/poison.hpp"
#include "robusthd/baseline/adaboost.hpp"
#include "robusthd/baseline/classifier.hpp"
#include "robusthd/baseline/fixedpoint.hpp"
#include "robusthd/baseline/mlp.hpp"
#include "robusthd/baseline/svm.hpp"
#include "robusthd/core/hdc_classifier.hpp"
#include "robusthd/core/protected_model.hpp"
#include "robusthd/core/serialize.hpp"
#include "robusthd/core/storage_integrity.hpp"
#include "robusthd/data/dataset.hpp"
#include "robusthd/data/loader.hpp"
#include "robusthd/data/synthetic.hpp"
#include "robusthd/fault/campaign.hpp"
#include "robusthd/fault/injector.hpp"
#include "robusthd/fault/memory.hpp"
#include "robusthd/fault/trace.hpp"
#include "robusthd/fleet/client.hpp"
#include "robusthd/fleet/fleet.hpp"
#include "robusthd/fleet/frontend.hpp"
#include "robusthd/fleet/netchaos.hpp"
#include "robusthd/fleet/router.hpp"
#include "robusthd/fleet/shard.hpp"
#include "robusthd/fleet/wire.hpp"
#include "robusthd/hv/accumulator.hpp"
#include "robusthd/hv/alt_encoders.hpp"
#include "robusthd/hv/assoc.hpp"
#include "robusthd/hv/binvec.hpp"
#include "robusthd/hv/encoder.hpp"
#include "robusthd/hv/itemmemory.hpp"
#include "robusthd/hv/sequence.hpp"
#include "robusthd/kernels/kernels.hpp"
#include "robusthd/mem/dram.hpp"
#include "robusthd/mem/ecc.hpp"
#include "robusthd/mem/ecc_memory.hpp"
#include "robusthd/mem/plane_arena.hpp"
#include "robusthd/model/confidence.hpp"
#include "robusthd/model/hdc_model.hpp"
#include "robusthd/model/metrics.hpp"
#include "robusthd/model/online.hpp"
#include "robusthd/model/online_trainer.hpp"
#include "robusthd/model/recovery.hpp"
#include "robusthd/model/regression.hpp"
#include "robusthd/persist/epoch_log.hpp"
#include "robusthd/persist/recover.hpp"
#include "robusthd/persist/wal.hpp"
#include "robusthd/pim/accelerator.hpp"
#include "robusthd/pim/cost.hpp"
#include "robusthd/pim/crossbar.hpp"
#include "robusthd/pim/device.hpp"
#include "robusthd/pim/endurance.hpp"
#include "robusthd/pim/gpu_ref.hpp"
#include "robusthd/pim/hdc_kernels.hpp"
#include "robusthd/pim/wearlevel.hpp"
#include "robusthd/serve/batcher.hpp"
#include "robusthd/serve/model_snapshot.hpp"
#include "robusthd/serve/request_queue.hpp"
#include "robusthd/serve/scrubber.hpp"
#include "robusthd/serve/server.hpp"
#include "robusthd/serve/stats.hpp"
#include "robusthd/serve/trust_gate.hpp"
#include "robusthd/serve/worker_pool.hpp"
#include "robusthd/util/crc32c.hpp"
#include "robusthd/util/parallel.hpp"
#include "robusthd/util/rng.hpp"
#include "robusthd/util/stats.hpp"
#include "robusthd/util/thread_pool.hpp"

namespace robusthd {

/// Library version.
inline constexpr const char* kVersion = "1.0.0";

}  // namespace robusthd
