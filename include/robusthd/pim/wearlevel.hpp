#pragma once
// Start-Gap wear levelling (Section 5.2).
//
// The endurance model assumes write pressure spreads uniformly; this module
// implements the mechanism that makes the assumption true. Start-Gap
// (Qureshi et al., MICRO'09) keeps one spare line and two registers: every
// `gap_move_interval` writes, the gap swaps with its neighbour, slowly
// rotating the logical→physical mapping so hot lines migrate across the
// whole array with O(1) metadata.

#include <cstdint>
#include <vector>

namespace robusthd::pim {

/// A wear-levelled array of `lines` lines (one spare is added internally).
class StartGapLeveler {
 public:
  /// `gap_move_interval`: number of serviced writes between gap moves
  /// (Qureshi's psi; 100 in the original paper).
  StartGapLeveler(std::size_t lines, std::size_t gap_move_interval = 100);

  std::size_t line_count() const noexcept { return lines_; }

  /// Physical line currently backing logical line `logical`.
  std::size_t physical_of(std::size_t logical) const noexcept;

  /// Services one write to `logical`: bumps the physical line's wear
  /// counter and advances the gap when the interval expires. Returns the
  /// physical line written.
  std::size_t write(std::size_t logical);

  /// Per-physical-line wear counters (includes gap-move copy writes).
  const std::vector<std::uint64_t>& wear() const noexcept { return wear_; }

  std::uint64_t max_wear() const noexcept;
  double mean_wear() const noexcept;
  /// Max/mean wear — 1.0 is perfect levelling.
  double imbalance() const noexcept;

  std::size_t gap_moves() const noexcept { return gap_moves_; }

 private:
  void move_gap();

  std::size_t lines_;                 // logical lines
  std::size_t interval_;
  std::size_t start_ = 0;             // rotation offset
  std::size_t gap_;                   // physical position of the spare
  std::size_t writes_since_move_ = 0;
  std::size_t gap_moves_ = 0;
  std::vector<std::uint64_t> wear_;   // lines_ + 1 physical lines
};

}  // namespace robusthd::pim
