#pragma once
// NVM endurance and accelerator lifetime (Section 5.2-5.3, Figure 4a).
//
// PIM arithmetic switches cells on every NOR step, so sustained inference
// wears the arrays out. With wear levelling the writes spread uniformly
// over the workload's footprint; each cell fails once its cumulative write
// count exceeds its individual endurance, which varies cell-to-cell
// (lognormal around the nominal 10^9). The failed-cell fraction at time t
// is therefore the lognormal CDF evaluated at the mean writes-per-cell —
// and a failed cell is a stuck bit, i.e. exactly the error rate axis of the
// robustness tables. Fig 4a composes this curve with each model's
// error-rate→accuracy curve.

#include <cstdint>

#include "robusthd/pim/accelerator.hpp"

namespace robusthd::pim {

/// Deployment profile of a workload on the accelerator.
struct LifetimeConfig {
  DeviceParams device = DeviceParams::vteam_28nm();
  /// Sustained inference service rate (inferences per second).
  double inference_rate_per_s = 17.0;
};

/// Analytic lifetime model for one workload.
class LifetimeModel {
 public:
  /// `cost` is the workload's per-inference cost from DpimAccelerator
  /// (device_switches + wear_cells are what matter here).
  LifetimeModel(const InferenceCost& cost, const LifetimeConfig& config);

  /// Mean cumulative writes per cell after `days` of service.
  double writes_per_cell(double days) const noexcept;

  /// Fraction of cells whose endurance is exceeded after `days`
  /// (lognormal CDF; this is the stuck-bit error rate of the array).
  double failed_fraction(double days) const noexcept;

  /// Days until the failed fraction first reaches `fraction`
  /// (inverse of failed_fraction; infinity if write rate is zero).
  double days_until_failed_fraction(double fraction) const noexcept;

 private:
  double writes_per_cell_per_day_ = 0.0;
  double endurance_mu_ = 0.0;     ///< ln(nominal endurance)
  double endurance_sigma_ = 0.25;
};

/// Monte-Carlo cross-check of the analytic model: samples `cells`
/// lognormal endurances and counts how many a given write level exceeds.
double simulate_failed_fraction(double writes_per_cell, const DeviceParams& device,
                                std::size_t cells, std::uint64_t seed);

}  // namespace robusthd::pim
