#pragma once
// MAGIC-NOR cost algebra.
//
// DPIM executes every operation as a sequence of in-memory NOR steps
// (Section 5.1): one step drives one output column per active row, takes
// one device switching delay, and may switch the output cells of all
// active rows. Gate-synthesis sizes follow the MAGIC / SIMPLER-MAGIC
// literature (Kvatinsky et al., Ben-Hur et al.):
//
//   NOT = 1 NOR        OR  = 2 NORs       AND = 3 NORs
//   XOR = 5 NORs       1-bit full adder = 9 NORs
//
// An N-bit add is a 9N-NOR ripple; an N×N multiply is shift-add —
// N AND-rows plus N-1 adds, i.e. Θ(N²) NOR steps. That quadratic growth is
// exactly the paper's observation that PIM write pressure explodes with
// arithmetic bit-width, and it is what kills both latency and endurance for
// high-precision DNN inference in memory.

#include <cstddef>
#include <cstdint>

#include "robusthd/pim/device.hpp"

namespace robusthd::pim {

/// Cost of a (composite) in-memory operation executed in one row.
/// `cycles` are sequential NOR steps; `switches` are worst-case device
/// writes in that row (each NOR step writes one output cell).
struct OpCost {
  std::uint64_t cycles = 0;
  std::uint64_t switches = 0;

  OpCost& operator+=(const OpCost& o) noexcept {
    cycles += o.cycles;
    switches += o.switches;
    return *this;
  }
  friend OpCost operator+(OpCost a, const OpCost& b) noexcept {
    return a += b;
  }
  friend OpCost operator*(OpCost a, std::uint64_t times) noexcept {
    a.cycles *= times;
    a.switches *= times;
    return a;
  }
};

/// NOR-synthesis sizes of the basic gates.
constexpr std::uint64_t kNorsPerNot = 1;
constexpr std::uint64_t kNorsPerOr = 2;
constexpr std::uint64_t kNorsPerAnd = 3;
constexpr std::uint64_t kNorsPerXor = 5;
constexpr std::uint64_t kNorsPerFullAdder = 9;

/// One raw NOR step.
constexpr OpCost cost_nor() noexcept { return {1, 1}; }

/// Bitwise ops over `bits` independent bit positions in one row.
constexpr OpCost cost_not(std::size_t bits) noexcept {
  return {kNorsPerNot * bits, kNorsPerNot * bits};
}
constexpr OpCost cost_and(std::size_t bits) noexcept {
  return {kNorsPerAnd * bits, kNorsPerAnd * bits};
}
constexpr OpCost cost_or(std::size_t bits) noexcept {
  return {kNorsPerOr * bits, kNorsPerOr * bits};
}
constexpr OpCost cost_xor(std::size_t bits) noexcept {
  return {kNorsPerXor * bits, kNorsPerXor * bits};
}

/// N-bit ripple-carry addition.
constexpr OpCost cost_add(std::size_t bits) noexcept {
  return {kNorsPerFullAdder * bits, kNorsPerFullAdder * bits};
}

/// N×N-bit shift-add multiplication: N partial products (AND rows) plus
/// N-1 accumulating adds of width 2N. Θ(N²) — the quadratic write blowup.
constexpr OpCost cost_multiply(std::size_t bits) noexcept {
  const std::uint64_t partials = kNorsPerAnd * bits * bits;
  const std::uint64_t adds =
      bits > 0 ? kNorsPerFullAdder * 2 * bits * (bits - 1) : 0;
  return {partials + adds, partials + adds};
}

/// Population count of `bits` one-bit values via a balanced adder tree
/// (width grows with the level). Θ(bits) with a ~2× adder constant.
OpCost cost_popcount(std::size_t bits) noexcept;

/// D-dimensional Hamming distance: XOR then popcount.
OpCost cost_hamming(std::size_t dimension) noexcept;

/// Wall-clock and energy of an op under given device parameters and
/// `row_parallelism` (number of rows executing the same NOR sequence at
/// once — cycles stay fixed, switches multiply).
struct PhysicalCost {
  double time_ns = 0.0;
  double energy_pj = 0.0;
  std::uint64_t total_switches = 0;
};

PhysicalCost physical(const OpCost& op, const DeviceParams& device,
                      std::uint64_t row_parallelism = 1) noexcept;

}  // namespace robusthd::pim
