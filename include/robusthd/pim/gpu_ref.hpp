#pragma once
// GPU reference cost model — the Figure 2 baseline.
//
// The paper normalises everything to a DNN running on an NVIDIA GTX 1080
// under TensorFlow at maximum throughput. We model the GPU as a throughput
// device with an effective sustained op rate and board power: inference
// time = ops / effective_rate, energy = time × power. Constants are set to
// the GTX 1080's public specs derated to realistic utilisation; Figure 2
// reports *ratios* to this baseline, so only consistency matters.

#include <cstddef>

#include "robusthd/pim/accelerator.hpp"

namespace robusthd::pim {

/// Throughput/power description of the reference GPU.
struct GpuParams {
  /// Sustained fixed/float MAC rate (GTX 1080: 8.9 TFLOP/s peak; ~4%
  /// sustained on small dense batch-1-style layers under TensorFlow).
  double mac_per_s = 3.6e11;
  /// Sustained 64-bit bitwise word-op rate (XOR+popcount pipelines).
  double wordop_per_s = 2.0e11;
  double board_power_w = 180.0;
  /// DRAM round-trip cost charged per parameter byte touched (captures the
  /// data-movement wall PIM removes).
  double dram_energy_pj_per_byte = 20.0;
  double dram_bandwidth_gb_s = 320.0;

  static GpuParams gtx1080() { return GpuParams{}; }
};

/// Per-inference GPU cost, comparable to pim::InferenceCost.
struct GpuCost {
  double latency_us = 0.0;
  double energy_uj = 0.0;
  double throughput_per_s = 0.0;
};

/// Canonical word-op count of a batched Hamming similarity search:
/// XOR + popcount + reduce (3 word ops) per 64-bit word of every
/// (query, class-plane) pair. This is exactly the work the
/// robusthd::kernels distance-matrix kernel performs, so the GPU cost
/// model, the accelerator cost algebra and the measured kernel throughput
/// (bench/kernel_throughput → BENCH_kernels.json) all price the same
/// number; kernels_test cross-checks the distances themselves against the
/// crossbar unit's in-memory search.
double hdc_search_wordops(std::size_t dimension, std::size_t classes,
                          std::size_t batch = 1) noexcept;

/// DNN inference on the GPU: MAC-bound compute plus weight traffic.
GpuCost gpu_cost_dnn(const DnnWorkloadSpec& spec,
                     const GpuParams& gpu = GpuParams::gtx1080());

/// HDC inference on the GPU: packed 64-bit XOR/popcount word ops (encoding
/// + similarity) plus item-memory traffic.
GpuCost gpu_cost_hdc(const HdcWorkloadSpec& spec,
                     const GpuParams& gpu = GpuParams::gtx1080());

}  // namespace robusthd::pim
