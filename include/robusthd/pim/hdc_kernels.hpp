#pragma once
// HDC kernels executed *on* the functional MAGIC-NOR crossbar.
//
// The accelerator model (accelerator.hpp) prices HDC inference in NOR
// steps; this unit actually runs the row-parallel part of that mapping on
// the bit-level crossbar simulator, so tests can check both directions:
// the in-memory results equal the software BinVec operations, and the NOR
// step counts equal the cost algebra's predictions. Dimension-major
// layout: one crossbar row per hypervector dimension, one column per
// stored class vector.

#include <vector>

#include "robusthd/hv/binvec.hpp"
#include "robusthd/pim/crossbar.hpp"

namespace robusthd::pim {

/// An in-memory associative search unit for one HDC model.
class CrossbarHdcUnit {
 public:
  /// Builds a crossbar sized for `dimension` rows and `classes` class
  /// columns plus query/scratch columns. Keep `dimension` modest (the
  /// functional simulator stores a byte per cell).
  CrossbarHdcUnit(std::size_t dimension, std::size_t classes);

  std::size_t dimension() const noexcept { return dim_; }
  std::size_t class_count() const noexcept { return classes_; }

  /// Writes a class hypervector down its column (plain memory writes).
  void load_class(std::size_t cls, const hv::BinVec& vector);

  /// Reads a stored class vector back out of the array.
  hv::BinVec read_class(std::size_t cls) const;

  /// Executes the similarity search for one query: writes the query
  /// column, then for every class performs the row-parallel in-memory XOR
  /// and counts the differing rows. Returns per-class Hamming distances.
  std::vector<std::size_t> hamming_search(const hv::BinVec& query);

  /// The underlying array (step counters, wear inspection).
  const Crossbar& array() const noexcept { return xbar_; }
  Crossbar& array() noexcept { return xbar_; }

  /// NOR steps one hamming_search costs (for cross-checking cost.hpp).
  static std::uint64_t expected_nor_steps(std::size_t classes) noexcept;

 private:
  std::size_t dim_;
  std::size_t classes_;
  std::size_t query_col_;
  std::size_t diff_col_;
  std::size_t scratch0_, scratch1_, scratch2_;
  std::vector<std::size_t> all_rows_;
  Crossbar xbar_;
};

}  // namespace robusthd::pim
