#pragma once
// Functional MAGIC-NOR crossbar simulator.
//
// A bit-level model of one DPIM memory array: cells store 0/1 (R_OFF/R_ON),
// a NOR step reads operand columns and writes an output column across all
// activated rows in parallel (Section 5.1's row-parallel execution), and
// every cell keeps a write counter so endurance experiments can observe
// where the write pressure actually lands. Composite gates (NOT/AND/XOR,
// full adder, ripple add) are provided as macros built from raw NOR steps —
// tests verify their step counts equal the cost.hpp algebra and their
// results equal ordinary CPU arithmetic.

#include <cstdint>
#include <span>
#include <vector>

#include "robusthd/pim/cost.hpp"

namespace robusthd::pim {

/// One simulated crossbar array.
class Crossbar {
 public:
  Crossbar(std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  bool read(std::size_t row, std::size_t col) const noexcept;
  /// Plain memory write (also counts against endurance).
  void write(std::size_t row, std::size_t col, bool value) noexcept;

  /// One MAGIC NOR step on the given rows: out_col <- NOR(in_cols...).
  /// The output cells are SET to R_ON first (a write), then conditionally
  /// RESET by the inputs — we count one switch per executed output cell,
  /// the dominant wear term.
  void nor(std::span<const std::size_t> in_cols, std::size_t out_col,
           std::span<const std::size_t> active_rows);

  // ---- Composite macros (each advances the NOR-step counter) ----

  /// out <- NOT a.
  void op_not(std::size_t a_col, std::size_t out_col,
              std::span<const std::size_t> rows);
  /// out <- a AND b (3 NORs, uses two scratch columns).
  void op_and(std::size_t a_col, std::size_t b_col, std::size_t out_col,
              std::size_t scratch0, std::size_t scratch1,
              std::span<const std::size_t> rows);
  /// out <- a XOR b (5 NORs, uses three scratch columns).
  void op_xor(std::size_t a_col, std::size_t b_col, std::size_t out_col,
              std::size_t scratch0, std::size_t scratch1,
              std::size_t scratch2, std::span<const std::size_t> rows);
  /// {sum, carry_out} <- a + b + carry_in (9 NORs, four scratch columns).
  void full_adder(std::size_t a_col, std::size_t b_col, std::size_t cin_col,
                  std::size_t sum_col, std::size_t cout_col,
                  std::span<const std::size_t> scratch,
                  std::span<const std::size_t> rows);
  /// Ripple add of two little-endian `bits`-wide operands; result column
  /// block must not overlap the operands. Uses 9*bits NOR steps.
  void ripple_add(std::size_t a_base, std::size_t b_base, std::size_t out_base,
                  std::size_t carry_col, std::span<const std::size_t> scratch,
                  std::size_t bits, std::span<const std::size_t> rows);

  // ---- Accounting ----

  std::uint64_t nor_steps() const noexcept { return nor_steps_; }
  std::uint64_t total_writes() const noexcept { return total_writes_; }
  std::uint64_t cell_writes(std::size_t row, std::size_t col) const noexcept {
    return writes_[row * cols_ + col];
  }
  /// Highest per-cell write count — the wear hotspot.
  std::uint64_t max_cell_writes() const noexcept;
  void reset_counters() noexcept;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::uint8_t> bits_;
  std::vector<std::uint64_t> writes_;
  std::uint64_t nor_steps_ = 0;
  std::uint64_t total_writes_ = 0;
};

}  // namespace robusthd::pim
