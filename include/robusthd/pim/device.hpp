#pragma once
// NVM device model for the digital PIM (DPIM) architecture of Section 5.
//
// The paper simulates a bipolar resistive device fitted with the VTEAM
// model to resemble commercial 3D XPoint: ~1 ns switching, 1 V RESET and
// 2 V SET pulses, and 10^9 write endurance. We reproduce those operating
// points as an analytical device cost model; HSPICE-level waveforms are out
// of scope (see DESIGN.md substitution table) — every figure that depends
// on the device uses only per-switch delay/energy and endurance, which are
// captured here.

namespace robusthd::pim {

/// Operating points of one memristive device.
struct DeviceParams {
  double switch_delay_ns = 1.0;   ///< RESET/SET switching delay (paper: 1 ns)
  double reset_voltage_v = 1.0;   ///< paper: 1 V RESET
  double set_voltage_v = 2.0;     ///< paper: 2 V SET
  double switch_energy_fj = 400.0; ///< RRAM SET/RESET ~0.4 pJ (mid-range of published 0.1-1 pJ)
  double r_on_ohm = 10.0e3;
  double r_off_ohm = 10.0e6;
  double endurance_writes = 1.0e9;  ///< Section 6.5 operating point
  /// Lognormal sigma of per-cell endurance. NVM endurance varies by
  /// orders of magnitude across cells; sigma=1.0 spans roughly a 10x
  /// interquartile spread, consistent with published RRAM statistics.
  double endurance_sigma = 1.0;

  /// The VTEAM-calibrated 28 nm configuration used by all benches.
  static DeviceParams vteam_28nm() { return DeviceParams{}; }
};

}  // namespace robusthd::pim
