#pragma once
// DPIM accelerator mapping (Section 5 / Figure 2).
//
// Lowers two inference workloads onto the MAGIC-NOR cost algebra:
//
//  * DNN — each output neuron occupies one crossbar row and evaluates its
//    MAC chain bit-serially: `in` fixed-point multiplies (Θ(bits²) NORs
//    each) plus accumulator adds. Neurons run row-parallel; layers are
//    sequential. This is the FloatPIM-style digital mapping the paper
//    builds on.
//  * HDC — dimension-major layout: each of the D dimensions occupies a
//    row. Binding/encoding is a 1-bit XOR chain plus a majority popcount
//    over the n features (all D rows in parallel); similarity search is a
//    1-bit XOR per class plus a log-depth adder-tree reduction over rows.
//
// Both mappings respect finite array geometry: work wider than the array
// serialises into passes; arrays multiply throughput via batch-level
// parallelism and give the wear-levelling surface for endurance modelling.

#include <cstdint>
#include <vector>

#include "robusthd/pim/cost.hpp"

namespace robusthd::pim {

/// Geometry and activity of the accelerator.
struct AcceleratorConfig {
  DeviceParams device = DeviceParams::vteam_28nm();
  /// Tile count of the chip (2048 tiles x 128 KiB = 256 MiB of NVM).
  std::size_t arrays = 2048;
  std::size_t rows_per_array = 1024;
  std::size_t cols_per_array = 1024;
  /// DNN mapping: how many tile column-groups split one neuron's
  /// input-dimension MAC chain; partial sums merge through a cross-tile
  /// adder tree. More groups shorten latency but the merge tree and tile
  /// wiring bound practical values.
  std::size_t dnn_inner_parallelism = 24;
  /// Fraction of NOR output cells that actually change state (a cell
  /// already in the target resistance does not consume a switching event).
  double activity_factor = 0.5;
  /// Wear-levelling surface per workload, as a multiple of its live
  /// footprint: deployments provision NVM capacity proportional to the
  /// model they serve, and scratch-column rotation spreads write pressure
  /// over that provisioned region (capped at the whole chip).
  std::size_t wear_overprovision = 64;
};

/// Fully connected DNN shape.
struct DnnWorkloadSpec {
  std::vector<std::pair<std::size_t, std::size_t>> layers;  ///< (in, out)
  unsigned weight_bits = 8;

  std::size_t mac_count() const noexcept {
    std::size_t total = 0;
    for (const auto& [in, out] : layers) total += in * out;
    return total;
  }
  std::size_t parameter_count() const noexcept {
    std::size_t total = 0;
    for (const auto& [in, out] : layers) total += in * out + out;
    return total;
  }
};

/// HDC inference shape.
struct HdcWorkloadSpec {
  std::size_t dimension = 10000;  ///< D
  std::size_t classes = 10;       ///< k
  std::size_t features = 561;     ///< n (encoding width)
  bool include_encoding = true;
};

/// Per-inference physical cost on the DPIM.
struct InferenceCost {
  std::uint64_t cycles = 0;          ///< sequential NOR steps
  std::uint64_t device_switches = 0; ///< total switching events
  double latency_us = 0.0;
  double energy_uj = 0.0;
  /// inferences/second at full batch parallelism across arrays.
  double throughput_per_s = 0.0;
  /// cells available for wear levelling (whole chip — wear-levelled
  /// migration spreads write pressure beyond the live footprint).
  std::uint64_t wear_cells = 0;
};

/// Analytical DPIM model.
class DpimAccelerator {
 public:
  explicit DpimAccelerator(const AcceleratorConfig& config = {})
      : config_(config) {}

  const AcceleratorConfig& config() const noexcept { return config_; }

  InferenceCost cost_dnn(const DnnWorkloadSpec& spec) const;
  InferenceCost cost_hdc(const HdcWorkloadSpec& spec) const;

 private:
  InferenceCost finalize(OpCost logical, std::uint64_t batch_parallel,
                         std::uint64_t footprint_cells) const;

  AcceleratorConfig config_;
};

}  // namespace robusthd::pim
