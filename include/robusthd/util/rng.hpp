#pragma once
// Deterministic, fast pseudo-random generation used across the library.
//
// Everything in RobustHD that involves randomness (base hypervectors, fault
// injection, synthetic data, stochastic substitution) draws from explicitly
// seeded generators so every experiment in bench/ is exactly reproducible.

#include <array>
#include <cstdint>
#include <cmath>
#include <span>

namespace robusthd::util {

/// SplitMix64 — used to expand a single 64-bit seed into a full generator
/// state. Passes BigCrush when used alone; here it is only a seeder.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — the library-wide PRNG. Small state, excellent statistical
/// quality, and cheap enough that fault campaigns flipping millions of bits
/// are not RNG-bound.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single seed via SplitMix64, as
  /// recommended by the xoshiro authors.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Unbiased uniform integer in [0, bound) via Lemire's method.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (caches the spare value).
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    has_spare_ = true;
    return u * f;
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Fills a span with fully random 64-bit words (random hypervector bits).
  void fill(std::span<std::uint64_t> words) noexcept {
    for (auto& w : words) w = next();
  }

  /// Derives an independent child generator; used to give each experiment
  /// arm its own stream without correlation.
  Xoshiro256 fork() noexcept { return Xoshiro256(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Fisher–Yates shuffle of index arrays (dataset shuffling, wear levelling).
template <typename T>
void shuffle(std::span<T> items, Xoshiro256& rng) noexcept {
  if (items.size() < 2) return;
  for (std::size_t i = items.size() - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i + 1));
    std::swap(items[i], items[j]);
  }
}

}  // namespace robusthd::util
