#pragma once
// CRC32C (Castagnoli) — the integrity primitive behind the RHD2 model
// store and any other stored-bits checking in the repo.
//
// Why CRC32C and not a hash: the threat model for *storage* faults is the
// same as for the in-memory attacks — bit flips — and a 32-bit CRC
// detects every 1- and 2-bit error over any realistic blob length, every
// burst up to 32 bits, and misses a random multi-bit corruption with
// probability 2^-32. That is exactly the guarantee the serialization
// round-trip experiment measures (bench/storage_integrity). It is also
// the polynomial with hardware support everywhere (SSE4.2 crc32, ARMv8
// CRC extension), so a later accelerated drop-in keeps the same values.

#include <cstddef>
#include <cstdint>
#include <span>

namespace robusthd::util {

/// CRC32C over `data`, continuing from `crc` (pass the previous call's
/// return value to checksum a blob in sections; 0 starts a fresh sum).
/// The seed/finalise XORs live inside, so partial sums compose simply:
/// crc32c(b, crc32c(a)) == crc32c(ab).
std::uint32_t crc32c(std::span<const std::byte> data,
                     std::uint32_t crc = 0) noexcept;

/// Raw-pointer convenience for headers and word buffers.
inline std::uint32_t crc32c(const void* data, std::size_t size,
                            std::uint32_t crc = 0) noexcept {
  return crc32c(
      std::span<const std::byte>(static_cast<const std::byte*>(data), size),
      crc);
}

}  // namespace robusthd::util
