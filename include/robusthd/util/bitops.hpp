#pragma once
// Word-level bit manipulation shared by hypervectors and the fault injector.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

#include "robusthd/kernels/kernels.hpp"

namespace robusthd::util {

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t words_for_bits(std::size_t bits) noexcept {
  return (bits + 63) / 64;
}

/// Reads bit `i` from a packed word array.
inline bool get_bit(std::span<const std::uint64_t> words, std::size_t i) noexcept {
  return (words[i >> 6] >> (i & 63)) & 1ULL;
}

/// Sets bit `i` in a packed word array to `value`.
inline void set_bit(std::span<std::uint64_t> words, std::size_t i, bool value) noexcept {
  const std::uint64_t mask = 1ULL << (i & 63);
  if (value) {
    words[i >> 6] |= mask;
  } else {
    words[i >> 6] &= ~mask;
  }
}

/// Flips bit `i` in a packed word array.
inline void flip_bit(std::span<std::uint64_t> words, std::size_t i) noexcept {
  words[i >> 6] ^= 1ULL << (i & 63);
}

/// Reads bit `i` from a raw byte buffer (fault-injection view of any model).
inline bool get_bit(std::span<const std::byte> bytes, std::size_t i) noexcept {
  return (std::to_integer<unsigned>(bytes[i >> 3]) >> (i & 7)) & 1u;
}

/// Flips bit `i` in a raw byte buffer.
inline void flip_bit(std::span<std::byte> bytes, std::size_t i) noexcept {
  bytes[i >> 3] ^= std::byte{static_cast<unsigned char>(1u << (i & 7))};
}

/// Population count over a word span (SIMD-dispatched).
inline std::size_t popcount(std::span<const std::uint64_t> words) noexcept {
  return kernels::popcount(words.data(), words.size());
}

/// Hamming distance between two equally sized word spans (SIMD-dispatched).
inline std::size_t hamming(std::span<const std::uint64_t> a,
                           std::span<const std::uint64_t> b) noexcept {
  return kernels::hamming(a.data(), b.data(), a.size());
}

/// Mask with the low `n` bits set (n in [0,64]).
constexpr std::uint64_t low_mask(std::size_t n) noexcept {
  return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

}  // namespace robusthd::util
