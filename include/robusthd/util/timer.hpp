#pragma once
// Wall-clock timing helper for benches and examples.

#include <chrono>

namespace robusthd::util {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace robusthd::util
