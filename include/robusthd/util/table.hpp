#pragma once
// Plain-text table printer so every bench prints the same rows/series the
// paper's tables and figures report, aligned and scannable.

#include <iomanip>
#include <ostream>
#include <string>
#include <vector>

namespace robusthd::util {

/// Accumulates rows of strings and prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  TextTable& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], cells[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto line = [&](const std::vector<std::string>& cells) {
      os << "| ";
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& c = i < cells.size() ? cells[i] : empty_;
        os << std::left << std::setw(static_cast<int>(widths[i])) << c
           << " | ";
      }
      os << '\n';
    };
    auto rule = [&] {
      os << "|";
      for (const auto w : widths) os << std::string(w + 2, '-') << "|";
      os << '\n';
    };

    line(header_);
    rule();
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::string empty_;
};

/// Formats a fraction as a percentage string, e.g. 0.0123 -> "1.23%".
std::string pct(double fraction, int decimals = 2);

/// Formats a double with fixed decimals.
std::string fixed(double value, int decimals = 2);

}  // namespace robusthd::util
