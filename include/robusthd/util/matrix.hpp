#pragma once
// Minimal dense row-major float matrix — just what the baseline trainers
// (MLP backprop, SVM SGD) need. Deliberately not a general linear-algebra
// library; hot paths use cache-friendly ikj GEMM.

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace robusthd::util {

/// Dense row-major matrix of floats.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }

  float& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<float> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  std::span<float> flat() noexcept { return data_; }
  std::span<const float> flat() const noexcept { return data_; }

  void fill(float v) noexcept { std::fill(data_.begin(), data_.end(), v); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b  (a: m×k, b: k×n, out: m×n), accumulating in float.
void gemm(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b^T convenience used by backprop (a: m×k, b: n×k, out: m×n).
void gemm_bt(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a^T * b convenience used by backprop (a: k×m, b: k×n, out: m×n).
void gemm_at(const Matrix& a, const Matrix& b, Matrix& out);

/// y = W * x + bias for a single vector (W: m×n, x: n, y: m).
void gemv(const Matrix& w, std::span<const float> x,
          std::span<const float> bias, std::span<float> y);

}  // namespace robusthd::util
