#pragma once
// Persistent worker pool for repeated data-parallel sections.
//
// util::parallel_for spawns and joins threads on every call — fine for
// one-shot experiment loops, fatal for a serving runtime that runs the
// same parallel section thousands of times per second. ThreadPool keeps
// its workers alive across calls: parallel_for() here hands each worker
// the same static contiguous partition of [0, n) that util::parallel_for
// would compute, so results stay bit-identical to the serial loop (and to
// the spawning implementation) while the per-call cost drops to one
// condition-variable broadcast.
//
// One parallel section at a time: calls are serialised by an internal
// mutex, so the pool is safe to share but not a work-stealing scheduler.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace robusthd::util {

/// Fixed-size pool of persistent workers executing static partitions.
class ThreadPool {
 public:
  /// `threads` == 0 means hardware_threads().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Invokes fn(i) for every i in [0, n) across the pool's workers;
  /// blocks until every index has been visited. The partition is the
  /// same static chunking as util::parallel_for, so any output indexed
  /// by i is identical to the serial loop. Exceptions thrown by fn are
  /// rethrown on the calling thread (first one wins).
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    run_ranges(n, [&fn](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }

 private:
  /// Type-erased once per section (not per index): each worker receives
  /// one contiguous [begin, end) range through this callback.
  void run_ranges(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body);
  void worker_main(std::size_t index);

  std::vector<std::thread> workers_;

  std::mutex section_mutex_;  ///< serialises parallel sections

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::size_t n_ = 0;
  std::size_t chunk_ = 0;
  std::size_t active_workers_ = 0;  ///< workers with a non-empty range
  std::size_t remaining_ = 0;       ///< workers still running this section
  std::uint64_t generation_ = 0;    ///< bumped per section
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace robusthd::util
