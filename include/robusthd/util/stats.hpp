#pragma once
// Streaming statistics and evaluation metrics used by experiments.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace robusthd::util {

/// Welford one-pass accumulator for mean / variance / extremes.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Classification accuracy from parallel label arrays.
inline double accuracy(std::span<const int> predicted,
                       std::span<const int> expected) noexcept {
  if (predicted.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    correct += (predicted[i] == expected[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

/// Quality loss as the paper reports it: clean accuracy minus faulty
/// accuracy, floored at zero, in fractional units (multiply by 100 for %).
inline double quality_loss(double clean_accuracy, double faulty_accuracy) noexcept {
  return std::max(0.0, clean_accuracy - faulty_accuracy);
}

/// k-class confusion matrix with per-class recall.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes)
      : k_(num_classes), counts_(num_classes * num_classes, 0) {}

  void add(int expected, int predicted) noexcept {
    if (expected < 0 || predicted < 0) return;
    const auto e = static_cast<std::size_t>(expected);
    const auto p = static_cast<std::size_t>(predicted);
    if (e < k_ && p < k_) ++counts_[e * k_ + p];
  }

  std::size_t at(std::size_t expected, std::size_t predicted) const noexcept {
    return counts_[expected * k_ + predicted];
  }

  std::size_t num_classes() const noexcept { return k_; }

  double accuracy() const noexcept {
    std::size_t diag = 0, total = 0;
    for (std::size_t e = 0; e < k_; ++e) {
      for (std::size_t p = 0; p < k_; ++p) {
        total += counts_[e * k_ + p];
        if (e == p) diag += counts_[e * k_ + p];
      }
    }
    return total ? static_cast<double>(diag) / static_cast<double>(total) : 0.0;
  }

  double recall(std::size_t cls) const noexcept {
    std::size_t row = 0;
    for (std::size_t p = 0; p < k_; ++p) row += counts_[cls * k_ + p];
    return row ? static_cast<double>(counts_[cls * k_ + cls]) /
                     static_cast<double>(row)
               : 0.0;
  }

 private:
  std::size_t k_;
  std::vector<std::size_t> counts_;
};

/// Numerically stable softmax over a small score vector (confidence block).
inline std::vector<double> softmax(std::span<const double> scores,
                                   double temperature = 1.0) {
  std::vector<double> out(scores.size());
  if (scores.empty()) return out;
  const double mx = *std::max_element(scores.begin(), scores.end());
  double sum = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    out[i] = std::exp((scores[i] - mx) / temperature);
    sum += out[i];
  }
  for (auto& v : out) v /= sum;
  return out;
}

/// Percentile (nearest-rank) of a copy of the data; p in [0,100].
inline double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace robusthd::util
