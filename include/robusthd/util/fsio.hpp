#pragma once
// Durable filesystem primitives — the fsync contract every crash-safe
// writer in the repo goes through.
//
// The rules (docs/serialization.md, "Durability & crash recovery"):
//  * a file replaced with atomic_write_file() is, after a crash at ANY
//    instant, either the complete old content or the complete new
//    content — never a prefix, never interleaved. The sequence is the
//    classic tmp -> write -> fsync(fd) -> rename(2) -> fsync(dir);
//  * appenders own their fds and call fsync_fd() at their commit points
//    (an epoch close), never per write;
//  * directory entries are only durable once the parent directory is
//    fsync'd — creating a file without fsync_dir() leaves a window in
//    which the file itself survives a crash but its name does not.
//
// Everything here throws util::FsError (a std::runtime_error) with errno
// detail on failure; nothing retries.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace robusthd::util {

/// Filesystem failure with errno context. Derives from std::runtime_error
/// so existing catch sites keep working.
struct FsError : std::runtime_error {
  explicit FsError(const std::string& what) : std::runtime_error(what) {}
};

/// Crash-atomically replaces `path` with `data`: writes to an O_EXCL
/// sibling temp file (`path`.tmp.<pid>.<n> — the collision guard: a
/// concurrent writer gets its own temp name, a leftover temp from a
/// crashed run is skipped, never truncated into), fsyncs the fd, renames
/// over `path`, and fsyncs the parent directory. A reader (or a crash)
/// can never observe a torn file at `path`.
void atomic_write_file(const std::string& path,
                       std::span<const std::byte> data);

/// fsync(2) on an open descriptor; throws on failure.
void fsync_fd(int fd);

/// write(2) until `data` is fully out (short writes and EINTR retried).
/// The appender primitive — durability still requires fsync_fd() at the
/// caller's commit point.
void write_fd(int fd, std::span<const std::byte> data);

/// Opens the directory containing `path` (or `path` itself when it is a
/// directory) and fsyncs it, making renames/creates/unlinks inside it
/// durable.
void fsync_parent_dir(const std::string& path);
void fsync_dir(const std::string& dir);

/// mkdir -p. No-op when the directory already exists.
void make_dirs(const std::string& dir);

/// Reads a whole file. `max_bytes` bounds the allocation: a file larger
/// than the bound throws instead of being read (validate-before-allocate
/// for on-disk inputs, same policy as the wire path).
std::vector<std::byte> read_file(const std::string& path,
                                 std::size_t max_bytes);

/// True when `path` exists (any file type).
bool path_exists(const std::string& path) noexcept;

/// Names (not paths) of the entries in `dir`, excluding "." and "..".
/// Missing directory == empty list.
std::vector<std::string> list_dir(const std::string& dir);

/// unlink(2); missing file is not an error.
void remove_file(const std::string& path);

}  // namespace robusthd::util
