#pragma once
// CSV emission for bench series (so figures can be re-plotted downstream).

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace robusthd::util {

/// Writes rows of comma-separated values to a file; silently becomes a
/// no-op when the file cannot be opened (benches must not fail on a
/// read-only filesystem).
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header) {
    out_.open(path);
    if (out_.is_open()) write_cells(header);
  }

  template <typename... Ts>
  void row(const Ts&... values) {
    if (!out_.is_open()) return;
    std::vector<std::string> cells;
    (cells.push_back(to_cell(values)), ...);
    write_cells(cells);
  }

  bool ok() const { return out_.is_open(); }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  void write_cells(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out_ << ',';
      out_ << cells[i];
    }
    out_ << '\n';
  }

  std::ofstream out_;
};

}  // namespace robusthd::util
