#pragma once
// Cache-line-aligned heap storage for hot word arrays.
//
// The SIMD kernels stream packed uint64 words with 256/512-bit loads; a
// std::vector<uint64_t> only guarantees alignof(uint64_t) == 8, so a plane
// that happens to start mid-cache-line pays a split-load on every vector
// access. This allocator over-aligns every allocation to 64 bytes (one
// cache line, and the widest vector register), which makes BinVec word
// storage and quarantine masks line-aligned without changing their types'
// interfaces — the arena layout (mem::PlaneArena) then extends the same
// guarantee to whole models.

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace robusthd::util {

/// Minimal over-aligning allocator: std::allocator semantics with every
/// allocation aligned to `Alignment` bytes. Alignment must be a power of
/// two and at least alignof(T).
template <typename T, std::size_t Alignment = 64>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's own alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// The packed-word vector type shared by BinVec and the quarantine masks:
/// 64-byte-aligned uint64 storage, drop-in for std::vector<uint64_t>.
using AlignedU64Vec = std::vector<std::uint64_t, AlignedAllocator<std::uint64_t>>;

/// True when `p` sits on a 64-byte boundary (runtime counterpart of the
/// allocator guarantee; asserted in BinVec and PlaneArena).
inline bool is_cacheline_aligned(const void* p) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & 63u) == 0;
}

}  // namespace robusthd::util
