#pragma once
// Deterministic data parallelism.
//
// parallel_for statically chunks [0, n) across hardware threads: each
// index is visited exactly once, outputs indexed by i land in the same
// place regardless of thread count, so results are bit-identical to the
// serial loop — determinism is a core property of this repo's experiments
// and must survive the speedup.
//
// Two entry points:
//  * the templated overload invokes the callable directly (no
//    std::function type-erasure) — use it on hot paths where fn is a
//    small lambda called millions of times;
//  * the std::function overload is kept for existing callers and for
//    call sites that genuinely hold a type-erased callable.

#include <algorithm>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace robusthd::util {

/// Number of worker threads parallel_for will use (>= 1).
std::size_t hardware_threads() noexcept;

namespace detail {

/// Below this, thread startup costs more than it saves.
inline constexpr std::size_t kParallelSerialThreshold = 16;

/// Shared implementation: statically partitions [0, n) into `workers`
/// contiguous ranges and runs them on `workers - 1` spawned threads plus
/// the calling thread. Exceptions thrown by fn are rethrown (first wins).
template <typename Fn>
void parallel_run(std::size_t n, Fn& fn, std::size_t max_threads) {
  if (n == 0) return;
  std::size_t workers = max_threads == 0 ? hardware_threads() : max_threads;
  workers = std::min(workers, n);

  if (workers <= 1 || n < kParallelSerialThreshold) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto run_range = [&](std::size_t begin, std::size_t end) {
    try {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 1; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    if (begin >= n) break;
    threads.emplace_back(run_range, begin, std::min(begin + chunk, n));
  }
  run_range(0, std::min(chunk, n));
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

/// Invokes fn(i) for every i in [0, n), in parallel when n is large
/// enough to amortise thread startup. `max_threads` == 0 means use all
/// hardware threads. Exceptions thrown by fn are rethrown (first one wins).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t max_threads = 0);

/// Type-preserving overload: the callable is invoked directly, so the
/// per-index cost is one (inlinable) call instead of a std::function
/// dispatch. Preferred on hot paths (batched scoring, encoding). Lambdas
/// bind here; std::function lvalues keep binding to the overload above.
template <typename Fn>
void parallel_for(std::size_t n, Fn fn, std::size_t max_threads = 0) {
  detail::parallel_run(n, fn, max_threads);
}

}  // namespace robusthd::util
