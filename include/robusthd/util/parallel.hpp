#pragma once
// Deterministic data parallelism.
//
// parallel_for statically chunks [0, n) across hardware threads: each
// index is visited exactly once, outputs indexed by i land in the same
// place regardless of thread count, so results are bit-identical to the
// serial loop — determinism is a core property of this repo's experiments
// and must survive the speedup.

#include <cstddef>
#include <functional>

namespace robusthd::util {

/// Number of worker threads parallel_for will use (>= 1).
std::size_t hardware_threads() noexcept;

/// Invokes fn(i) for every i in [0, n), in parallel when n is large
/// enough to amortise thread startup. `max_threads` == 0 means use all
/// hardware threads. Exceptions thrown by fn are rethrown (first one wins).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t max_threads = 0);

}  // namespace robusthd::util
