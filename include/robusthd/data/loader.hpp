#pragma once
// CSV dataset loading.
//
// The experiments in this repo run on synthetic equivalents because the
// paper's datasets are not shipped — but the library itself is not tied to
// them. Anyone holding the real UCI HAR / ISOLET / ... files as CSV can
// load them here and run every bench path on real data.
//
// Format: one sample per line, numeric fields separated by commas (or a
// caller-chosen delimiter). The label column may sit anywhere; labels may
// be arbitrary numeric or string tokens and are densely re-indexed to
// 0..k-1 in first-appearance order.

#include <cstdint>
#include <string>
#include <vector>

#include "robusthd/data/dataset.hpp"

namespace robusthd::data {

/// CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  /// Index of the label column; negative counts from the end (-1 = last).
  int label_column = -1;
  bool has_header = false;
};

/// Loads a labelled dataset from a CSV file. Throws std::runtime_error on
/// I/O failure, non-numeric features, or ragged rows.
Dataset load_csv(const std::string& path, const CsvOptions& options = {});

/// Parses CSV content from a string (same rules as load_csv).
Dataset parse_csv(const std::string& content, const CsvOptions& options = {});

/// Splits a dataset into train/test with a deterministic shuffle;
/// `train_fraction` in (0, 1). Does NOT normalise — call
/// normalize_minmax() on the result before encoding.
Split train_test_split(const Dataset& dataset, double train_fraction,
                       std::uint64_t seed = 0x5117);

}  // namespace robusthd::data
