#pragma once
// Synthetic dataset generation.
//
// Each class is a mixture of Gaussian clusters in feature space; a fraction
// of features are pure noise (carry no class information), and features are
// lightly correlated through a sparse random mixing pass. The generator is
// deterministic in its seed so every experiment is reproducible.
//
// Why this is a faithful substitute: the paper's robustness results measure
// *quality loss* — accuracy of a model whose stored bits were corrupted,
// relative to the same model clean. That delta depends on the model
// representation and the fault process, not on whether the features came
// from accelerometers or a mixture model; the spec's separability knob is
// tuned so clean accuracies are realistic for each benchmark.

#include <cstdint>

#include "robusthd/data/dataset.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::data {

/// Tunables of the synthetic generator.
///
/// Features are *anchor-structured*: every (class-cluster, feature) pair
/// picks one of `anchor_count` discrete anchor values in [0, 1], and
/// samples scatter around their anchor with a noise small compared to the
/// anchor spacing. This mimics the structure of the paper's benchmarks —
/// pixel intensities, spectral bins and sensor channels are near-discrete
/// per class — and it is what gives hyperdimensional encodings their
/// published geometry: same-class encodings agree on ~95% of dimensions
/// (quantisation snaps core samples to the same levels) while cross-class
/// encodings are far. Purely Gaussian feature clouds cannot reach that
/// regime: the within-class spread stays a fixed fraction of the dynamic
/// range no matter the separation, capping same-class agreement near 0.92.
struct SynthConfig {
  std::size_t anchor_count = 4;     ///< discrete values per feature
  /// Core sample noise as a fraction of the anchor spacing. 0.2 keeps most
  /// core samples inside their own quantisation level.
  double within_noise = 0.03;
  /// Probability that a feature is *shared* (all classes use the same
  /// anchor — carries no class signal). Plays the noise-feature role.
  double shared_feature_fraction = 0.70;
  std::size_t clusters_per_class = 1;
  /// Confusable samples: this fraction of samples is a feature-wise blend
  /// between its own class pattern and a random other class's pattern
  /// (blend weight uniform in [lo, hi]). These are the boundary samples —
  /// they carry thin margins, supply the task's Bayes-error floor, and are
  /// the queries that flip first under bit-flip attack. Symmetric noise
  /// cannot play this role in high feature counts: it averages out.
  double confuser_fraction = 0.35;
  double confuser_blend_lo = 0.25;
  double confuser_blend_hi = 0.55;
  std::uint64_t seed = 0x5eed;
};

/// Generates a train/test split to `spec` (sizes, feature count, classes),
/// already min-max normalised to [0, 1].
Split make_synthetic(const DatasetSpec& spec, const SynthConfig& config);

/// Convenience: default config with the spec's own separability and a seed.
Split make_synthetic(const DatasetSpec& spec, std::uint64_t seed = 0x5eed);

}  // namespace robusthd::data
