#pragma once
// In-memory dataset representation plus the specs of the six benchmarks the
// paper evaluates on (Table 2). Real copies of MNIST / UCI HAR / ISOLET /
// FACE / PAMAP / PECAN are not available offline, so experiments run on
// synthetic equivalents generated to each spec (see synthetic.hpp and the
// substitution table in DESIGN.md).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "robusthd/util/matrix.hpp"

namespace robusthd::data {

/// A labelled dense dataset: one row per sample, features in [0, 1] after
/// normalisation, integer class labels in [0, num_classes).
struct Dataset {
  util::Matrix features;    ///< samples × feature_count
  std::vector<int> labels;  ///< size == samples
  std::size_t num_classes = 0;

  std::size_t size() const noexcept { return features.rows(); }
  std::size_t feature_count() const noexcept { return features.cols(); }
  std::span<const float> sample(std::size_t i) const noexcept {
    return features.row(i);
  }
};

/// Train/test pair.
struct Split {
  Dataset train;
  Dataset test;
};

/// Static description of one benchmark (mirrors the paper's Table 2).
struct DatasetSpec {
  std::string name;
  std::size_t feature_count;  ///< n
  std::size_t num_classes;    ///< k
  std::size_t train_size;
  std::size_t test_size;
  std::string description;
  /// How separable the synthetic classes are; tuned per dataset so the
  /// clean accuracies land in realistic ranges for that benchmark.
  double separability;
};

/// The six datasets of Table 2, in paper order.
std::span<const DatasetSpec> paper_datasets();

/// Looks up a spec by (case-sensitive) name; throws std::out_of_range on
/// unknown names.
const DatasetSpec& dataset_by_name(const std::string& name);

/// Returns a copy of `spec` whose train/test sizes are capped at
/// `max_train` / `max_test`. The paper's FACE and PAMAP have 10^5-10^6
/// samples; benches downscale them to keep the full suite minutes, not
/// hours. Robustness deltas are size-insensitive well below these caps.
DatasetSpec scaled(const DatasetSpec& spec, std::size_t max_train,
                   std::size_t max_test);

/// Min-max normalises all feature columns of `split.train` to [0, 1] and
/// applies the train statistics to `split.test` (clamping to [0, 1]).
void normalize_minmax(Split& split);

}  // namespace robusthd::data
