// Tests for word-level bit manipulation.
#include "robusthd/util/bitops.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace robusthd::util {
namespace {

TEST(Bitops, WordsForBits) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(64), 1u);
  EXPECT_EQ(words_for_bits(65), 2u);
  EXPECT_EQ(words_for_bits(10000), 157u);
}

TEST(Bitops, WordGetSetFlip) {
  std::vector<std::uint64_t> w(2, 0);
  set_bit(std::span<std::uint64_t>(w), 0, true);
  set_bit(std::span<std::uint64_t>(w), 64, true);
  EXPECT_TRUE(get_bit(std::span<const std::uint64_t>(w), 0));
  EXPECT_TRUE(get_bit(std::span<const std::uint64_t>(w), 64));
  EXPECT_FALSE(get_bit(std::span<const std::uint64_t>(w), 63));
  flip_bit(std::span<std::uint64_t>(w), 0);
  EXPECT_FALSE(get_bit(std::span<const std::uint64_t>(w), 0));
  set_bit(std::span<std::uint64_t>(w), 64, false);
  EXPECT_FALSE(get_bit(std::span<const std::uint64_t>(w), 64));
}

TEST(Bitops, ByteGetFlip) {
  std::vector<std::byte> bytes(4, std::byte{0});
  flip_bit(std::span<std::byte>(bytes), 0);
  flip_bit(std::span<std::byte>(bytes), 9);
  flip_bit(std::span<std::byte>(bytes), 31);
  EXPECT_TRUE(get_bit(std::span<const std::byte>(bytes), 0));
  EXPECT_TRUE(get_bit(std::span<const std::byte>(bytes), 9));
  EXPECT_TRUE(get_bit(std::span<const std::byte>(bytes), 31));
  EXPECT_FALSE(get_bit(std::span<const std::byte>(bytes), 1));
  EXPECT_EQ(std::to_integer<int>(bytes[0]), 1);
  EXPECT_EQ(std::to_integer<int>(bytes[1]), 2);
  EXPECT_EQ(std::to_integer<int>(bytes[3]), 0x80);
  // Flipping again restores.
  flip_bit(std::span<std::byte>(bytes), 9);
  EXPECT_EQ(std::to_integer<int>(bytes[1]), 0);
}

TEST(Bitops, PopcountAndHamming) {
  std::vector<std::uint64_t> a{0xFFULL, 0x1ULL};
  std::vector<std::uint64_t> b{0x0FULL, 0x0ULL};
  EXPECT_EQ(popcount(std::span<const std::uint64_t>(a)), 9u);
  EXPECT_EQ(hamming(std::span<const std::uint64_t>(a),
                    std::span<const std::uint64_t>(b)),
            5u);
}

TEST(Bitops, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(8), 0xFFu);
  EXPECT_EQ(low_mask(64), ~0ULL);
  EXPECT_EQ(low_mask(70), ~0ULL);
}

}  // namespace
}  // namespace robusthd::util
