// Tests for the fixed-point baselines: quantisation, MLP, SVM, AdaBoost.
#include <gtest/gtest.h>

#include "robusthd/baseline/adaboost.hpp"
#include "robusthd/baseline/fixedpoint.hpp"
#include "robusthd/baseline/mlp.hpp"
#include "robusthd/baseline/svm.hpp"
#include "robusthd/data/synthetic.hpp"
#include "robusthd/fault/injector.hpp"
#include "robusthd/util/stats.hpp"

namespace robusthd::baseline {
namespace {

data::Split small_split() {
  auto spec = data::scaled(data::dataset_by_name("PAMAP"), 600, 200);
  return data::make_synthetic(spec, 0x7e57);
}

TEST(QuantizedTensor, RoundTripWithinScale) {
  const float values[] = {0.5f, -0.25f, 1.0f, -1.0f, 0.0f};
  QuantizedTensor q(values, Precision::kInt8);
  EXPECT_EQ(q.size(), 5u);
  EXPECT_FALSE(q.is_unsigned());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(q.get(i), values[i], q.scale());
  }
}

TEST(QuantizedTensor, AutoUnsignedForNonNegative) {
  const float values[] = {0.1f, 0.9f, 0.5f};
  QuantizedTensor q(values, Precision::kInt8, Signedness::kAuto);
  EXPECT_TRUE(q.is_unsigned());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(q.get(i), values[i], q.scale());
  }
  // Default stays signed even for non-negative data.
  QuantizedTensor s(values, Precision::kInt8);
  EXPECT_FALSE(s.is_unsigned());
}

TEST(QuantizedTensor, Int16IsMorePrecise) {
  const float values[] = {0.123456f, -0.654321f};
  QuantizedTensor q8(values, Precision::kInt8);
  QuantizedTensor q16(values, Precision::kInt16);
  EXPECT_LT(std::abs(q16.get(0) - values[0]),
            std::abs(q8.get(0) - values[0]) + 1e-7f);
  EXPECT_LT(q16.scale(), q8.scale());
}

TEST(QuantizedTensor, Float32IsExact) {
  const float values[] = {0.123456f, -3.14159f};
  QuantizedTensor q(values, Precision::kFloat32);
  EXPECT_FLOAT_EQ(q.get(0), values[0]);
  EXPECT_FLOAT_EQ(q.get(1), values[1]);
}

TEST(QuantizedTensor, RegionExposesStoredBytes) {
  const float values[] = {1.0f, -1.0f};
  QuantizedTensor q(values, Precision::kInt8);
  auto region = q.region("w");
  EXPECT_EQ(region.bytes.size(), 2u);
  EXPECT_EQ(region.value_bits, 8u);
  // Flipping the sign bit of value 0 negates it.
  region.bytes[0] ^= std::byte{0x80};
  EXPECT_LT(q.get(0), 0.0f);
}

TEST(Saturate, HandlesNanAndInfinity) {
  EXPECT_FLOAT_EQ(saturate(std::nanf(""), 10.0f), 0.0f);
  EXPECT_FLOAT_EQ(saturate(1e30f, 10.0f), 10.0f);
  EXPECT_FLOAT_EQ(saturate(-1e30f, 10.0f), -10.0f);
  EXPECT_FLOAT_EQ(saturate(3.0f, 10.0f), 3.0f);
}

TEST(Mlp, LearnsSyntheticTask) {
  const auto split = small_split();
  const auto mlp = Mlp::train(split.train, {});
  EXPECT_GT(mlp.evaluate(split.test), 0.80);
  EXPECT_GT(mlp.parameter_count(), 1000u);
}

TEST(Mlp, LogitsShapeAndPrediction) {
  const auto split = small_split();
  const auto mlp = Mlp::train(split.train, {});
  const auto logits = mlp.logits(split.test.sample(0));
  ASSERT_EQ(logits.size(), split.test.num_classes);
  const auto best = static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
  EXPECT_EQ(best, mlp.predict(split.test.sample(0)));
}

TEST(Mlp, CloneIsIndependent) {
  const auto split = small_split();
  const auto mlp = Mlp::train(split.train, {});
  auto clone = mlp.clone();
  util::Xoshiro256 rng(1);
  auto regions = clone->memory_regions();
  fault::BitFlipInjector::inject(regions, 0.2, fault::AttackMode::kTargeted,
                                 rng);
  // Original untouched.
  EXPECT_EQ(mlp.evaluate(split.test), Mlp::train(split.train, {}).evaluate(split.test));
}

TEST(Mlp, TargetedAttackIsDevastating) {
  const auto split = small_split();
  const auto mlp = Mlp::train(split.train, {});
  const double clean = mlp.evaluate(split.test);
  auto victim = mlp.clone();
  util::Xoshiro256 rng(2);
  auto regions = victim->memory_regions();
  fault::BitFlipInjector::inject(regions, 0.10, fault::AttackMode::kTargeted,
                                 rng);
  EXPECT_LT(victim->evaluate(split.test), clean - 0.2);
}

TEST(LinearSvm, LearnsSyntheticTask) {
  const auto split = small_split();
  const auto svm = LinearSvm::train(split.train, {});
  EXPECT_GT(svm.evaluate(split.test), 0.80);
}

TEST(LinearSvm, ScoresMatchPrediction) {
  const auto split = small_split();
  const auto svm = LinearSvm::train(split.train, {});
  for (std::size_t i = 0; i < 10; ++i) {
    const auto scores = svm.scores(split.test.sample(i));
    const auto best = static_cast<int>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
    EXPECT_EQ(best, svm.predict(split.test.sample(i)));
  }
}

TEST(AdaBoost, LearnsSyntheticTask) {
  const auto split = small_split();
  const auto ada = AdaBoost::train(split.train, {});
  EXPECT_GT(ada.evaluate(split.test), 0.75);
  EXPECT_GT(ada.round_count(), 50u);
}

TEST(AdaBoost, SmallConfigStillWorks) {
  const auto split = small_split();
  AdaBoostConfig config;
  config.rounds = 20;
  config.buckets = 8;
  const auto ada = AdaBoost::train(split.train, config);
  EXPECT_LE(ada.round_count(), 20u);
  EXPECT_GT(ada.evaluate(split.test), 0.5);
}

TEST(AdaBoost, MoreRobustThanMlpUnderRandomAttack) {
  // The cross-model ordering of Table 3, as a regression test.
  const auto split = small_split();
  const auto mlp = Mlp::train(split.train, {});
  const auto ada = AdaBoost::train(split.train, {});
  const double mlp_clean = mlp.evaluate(split.test);
  const double ada_clean = ada.evaluate(split.test);
  util::RunningStats mlp_loss, ada_loss;
  for (int r = 0; r < 4; ++r) {
    auto mv = mlp.clone();
    auto av = ada.clone();
    util::Xoshiro256 rng(100 + r);
    auto mr = mv->memory_regions();
    fault::BitFlipInjector::inject(mr, 0.10, fault::AttackMode::kRandom, rng);
    auto ar = av->memory_regions();
    fault::BitFlipInjector::inject(ar, 0.10, fault::AttackMode::kRandom, rng);
    mlp_loss.add(mlp_clean - mv->evaluate(split.test));
    ada_loss.add(ada_clean - av->evaluate(split.test));
  }
  EXPECT_GT(mlp_loss.mean(), ada_loss.mean());
}

class MlpPrecisions : public ::testing::TestWithParam<Precision> {};

TEST_P(MlpPrecisions, TrainsAtEveryPrecision) {
  const auto split = small_split();
  MlpConfig config;
  config.precision = GetParam();
  const auto mlp = Mlp::train(split.train, config);
  EXPECT_GT(mlp.evaluate(split.test), 0.75);
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, MlpPrecisions,
                         ::testing::Values(Precision::kInt8,
                                           Precision::kInt16,
                                           Precision::kFloat32));

}  // namespace
}  // namespace robusthd::baseline
