// Tests for the MAGIC-NOR cost algebra, accelerator mapping, endurance
// model and GPU reference.

#include <cmath>
#include <gtest/gtest.h>

#include "robusthd/pim/accelerator.hpp"
#include "robusthd/pim/cost.hpp"
#include "robusthd/pim/endurance.hpp"
#include "robusthd/pim/gpu_ref.hpp"

namespace robusthd::pim {
namespace {

TEST(Cost, GateSizes) {
  EXPECT_EQ(cost_nor().cycles, 1u);
  EXPECT_EQ(cost_not(1).cycles, 1u);
  EXPECT_EQ(cost_and(1).cycles, 3u);
  EXPECT_EQ(cost_or(1).cycles, 2u);
  EXPECT_EQ(cost_xor(1).cycles, 5u);
  EXPECT_EQ(cost_add(1).cycles, 9u);
}

TEST(Cost, BitwiseOpsScaleLinearly) {
  EXPECT_EQ(cost_xor(100).cycles, 100 * cost_xor(1).cycles);
  EXPECT_EQ(cost_add(32).cycles, 32 * cost_add(1).cycles);
}

TEST(Cost, MultiplyIsQuadratic) {
  // The paper's claim: PIM write count grows quadratically with bit-width.
  const auto c8 = cost_multiply(8).cycles;
  const auto c16 = cost_multiply(16).cycles;
  const auto c32 = cost_multiply(32).cycles;
  EXPECT_GT(static_cast<double>(c16), 3.5 * static_cast<double>(c8));
  EXPECT_LT(static_cast<double>(c16), 4.5 * static_cast<double>(c8));
  EXPECT_GT(static_cast<double>(c32), 3.5 * static_cast<double>(c16));
}

TEST(Cost, OperatorAlgebra) {
  const OpCost a{10, 20};
  const OpCost b{1, 2};
  const auto sum = a + b;
  EXPECT_EQ(sum.cycles, 11u);
  EXPECT_EQ(sum.switches, 22u);
  const auto scaled = b * 5;
  EXPECT_EQ(scaled.cycles, 5u);
  EXPECT_EQ(scaled.switches, 10u);
}

TEST(Cost, PopcountIsLinearWithTreeConstant) {
  const auto c100 = cost_popcount(100).cycles;
  const auto c1000 = cost_popcount(1000).cycles;
  EXPECT_GT(c1000, 8 * c100);
  EXPECT_LT(c1000, 13 * c100);
  EXPECT_EQ(cost_popcount(1).cycles, 0u);  // nothing to reduce
  EXPECT_GT(cost_popcount(2).cycles, 0u);
}

TEST(Cost, PhysicalConversion) {
  DeviceParams device;
  device.switch_delay_ns = 2.0;
  device.switch_energy_fj = 100.0;
  const OpCost op{1000, 500};
  const auto p = physical(op, device, 4);
  EXPECT_DOUBLE_EQ(p.time_ns, 2000.0);
  EXPECT_EQ(p.total_switches, 2000u);
  EXPECT_DOUBLE_EQ(p.energy_pj, 2000 * 100.0 * 1e-3);
}

TEST(Accelerator, HdcBeatsDnnOnLatencyAndEnergy) {
  DpimAccelerator accelerator;
  DnnWorkloadSpec dnn;
  dnn.layers = {{561, 512}, {512, 512}, {512, 12}};
  HdcWorkloadSpec hdc{10000, 12, 561, true};
  const auto dc = accelerator.cost_dnn(dnn);
  const auto hc = accelerator.cost_hdc(hdc);
  EXPECT_LT(hc.latency_us, dc.latency_us);
  EXPECT_LT(hc.energy_uj, dc.energy_uj);
  EXPECT_GT(hc.throughput_per_s, dc.throughput_per_s);
}

TEST(Accelerator, DnnCostScalesWithPrecision) {
  DpimAccelerator accelerator;
  DnnWorkloadSpec dnn8;
  dnn8.layers = {{100, 100}};
  DnnWorkloadSpec dnn16 = dnn8;
  dnn16.weight_bits = 16;
  const auto c8 = accelerator.cost_dnn(dnn8);
  const auto c16 = accelerator.cost_dnn(dnn16);
  // Quadratic multiply dominates: 16-bit should cost ~3-4x in switches.
  EXPECT_GT(c16.device_switches, 3 * c8.device_switches);
}

TEST(Accelerator, HdcEncodingCostsExtra) {
  DpimAccelerator accelerator;
  HdcWorkloadSpec with{10000, 10, 561, true};
  HdcWorkloadSpec without{10000, 10, 561, false};
  const auto cw = accelerator.cost_hdc(with);
  const auto co = accelerator.cost_hdc(without);
  EXPECT_GT(cw.cycles, co.cycles);
  EXPECT_GT(cw.device_switches, co.device_switches);
}

TEST(Accelerator, WearSurfaceScalesWithFootprint) {
  DpimAccelerator accelerator;
  HdcWorkloadSpec small{2000, 10, 561, true};
  HdcWorkloadSpec large{20000, 10, 561, true};
  EXPECT_LT(accelerator.cost_hdc(small).wear_cells,
            accelerator.cost_hdc(large).wear_cells);
}

TEST(Lifetime, FailureFractionMonotone) {
  DpimAccelerator accelerator;
  HdcWorkloadSpec hdc{10000, 12, 561, true};
  LifetimeModel lifetime(accelerator.cost_hdc(hdc), {});
  double previous = -1.0;
  for (const double days : {10.0, 100.0, 1000.0, 10000.0}) {
    const double f = lifetime.failed_fraction(days);
    EXPECT_GE(f, previous);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    previous = f;
  }
  EXPECT_DOUBLE_EQ(lifetime.failed_fraction(0.0), 0.0);
}

TEST(Lifetime, InverseIsConsistent) {
  DpimAccelerator accelerator;
  DnnWorkloadSpec dnn;
  dnn.layers = {{561, 512}, {512, 12}};
  LifetimeModel lifetime(accelerator.cost_dnn(dnn), {});
  for (const double f : {0.001, 0.01, 0.1}) {
    const double days = lifetime.days_until_failed_fraction(f);
    EXPECT_NEAR(lifetime.failed_fraction(days), f, f * 0.05);
  }
}

TEST(Lifetime, HigherServiceRateWearsFaster) {
  DpimAccelerator accelerator;
  HdcWorkloadSpec hdc{10000, 12, 561, true};
  LifetimeConfig slow;
  slow.inference_rate_per_s = 1.0;
  LifetimeConfig fast;
  fast.inference_rate_per_s = 100.0;
  LifetimeModel a(accelerator.cost_hdc(hdc), slow);
  LifetimeModel b(accelerator.cost_hdc(hdc), fast);
  EXPECT_GT(a.days_until_failed_fraction(0.01),
            b.days_until_failed_fraction(0.01));
}

TEST(Lifetime, MonteCarloAgreesWithAnalytic) {
  DeviceParams device;
  const double writes = device.endurance_writes * 0.5;  // below nominal
  const double simulated =
      simulate_failed_fraction(writes, device, 20000, 42);
  // Analytic: Phi(ln(0.5)/sigma).
  const double z = std::log(0.5) / device.endurance_sigma;
  const double analytic = 0.5 * std::erfc(-z / std::sqrt(2.0));
  EXPECT_NEAR(simulated, analytic, 0.02);
}

TEST(GpuRef, DnnCostsScaleWithWorkload) {
  DnnWorkloadSpec small;
  small.layers = {{100, 100}};
  DnnWorkloadSpec large;
  large.layers = {{1000, 1000}};
  const auto cs = gpu_cost_dnn(small);
  const auto cl = gpu_cost_dnn(large);
  EXPECT_GT(cl.latency_us, cs.latency_us);
  EXPECT_GT(cl.energy_uj, cs.energy_uj);
  EXPECT_LT(cl.throughput_per_s, cs.throughput_per_s);
}

TEST(GpuRef, HdcGpuFasterWithoutEncoding) {
  HdcWorkloadSpec with{10000, 10, 561, true};
  HdcWorkloadSpec without{10000, 10, 561, false};
  EXPECT_LT(gpu_cost_hdc(without).latency_us,
            gpu_cost_hdc(with).latency_us);
}

}  // namespace
}  // namespace robusthd::pim
