// Tests for the live-fire resilience layer: quarantine-masked scoring,
// repair prioritization, the plane health sentinel (drift verdicts,
// hysteresis, quarantine, circuit breaker), the chaos agent's budget
// accounting, and the full ChaosAgent + Scrubber + Sentinel stack running
// concurrently against live traffic. The concurrent tests here are part
// of the TSan gate (see .github/workflows/ci.yml).
#include "robusthd/serve/sentinel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <tuple>
#include <vector>

#include "robusthd/fault/injector.hpp"
#include "robusthd/model/recovery.hpp"
#include "robusthd/serve/chaos.hpp"
#include "robusthd/serve/server.hpp"
#include "robusthd/util/bitops.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::serve {
namespace {

constexpr std::size_t kDim = 2000;
constexpr std::size_t kClasses = 5;
constexpr std::size_t kChunks = 20;

/// Same tight-cluster geometry serve_test uses: queries agree with their
/// prototype on ~96% of dimensions, so clean accuracy is ~1.0.
struct World {
  std::vector<hv::BinVec> queries;
  std::vector<int> labels;
  model::HdcModel model;
};

World make_world(std::uint64_t seed, std::size_t queries_per_class = 20) {
  World w;
  util::Xoshiro256 rng(seed);
  std::vector<hv::BinVec> prototypes;
  std::vector<hv::BinVec> train;
  std::vector<int> train_labels;
  for (std::size_t c = 0; c < kClasses; ++c) {
    prototypes.push_back(hv::BinVec::random(kDim, rng));
  }
  auto noisy = [&](std::size_t c) {
    auto v = prototypes[c];
    for (std::size_t d = 0; d < kDim; ++d) {
      if (rng.bernoulli(0.04)) v.flip(d);
    }
    return v;
  };
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (int i = 0; i < 20; ++i) {
      train.push_back(noisy(c));
      train_labels.push_back(static_cast<int>(c));
    }
    for (std::size_t i = 0; i < queries_per_class; ++i) {
      w.queries.push_back(noisy(c));
      w.labels.push_back(static_cast<int>(c));
    }
  }
  w.model = model::HdcModel::train(train, train_labels, kClasses, {});
  return w;
}

/// The recovery engine's chunk partition, shared by the whole ladder.
std::pair<std::size_t, std::size_t> chunk_range(std::size_t c,
                                                std::size_t dim,
                                                std::size_t m) {
  return {c * dim / m, (c + 1) * dim / m};
}

/// Inverts every bit of `cls`'s plane 0 inside chunk `c`.
void invert_chunk(model::HdcModel& model, std::size_t cls, std::size_t c,
                  std::size_t m) {
  auto& plane = model.class_vector(cls).planes[0];
  const auto [begin, end] = chunk_range(c, model.dimension(), m);
  for (std::size_t d = begin; d < end; ++d) plane.flip(d);
}

double accuracy(const model::HdcModel& model,
                const std::vector<hv::BinVec>& queries,
                const std::vector<int>& labels,
                const QuarantineMask* mask = nullptr) {
  std::vector<const hv::BinVec*> ptrs(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) ptrs[i] = &queries[i];
  model::ScoreWorkspace ws;
  if (mask != nullptr) {
    model.scores_batch_masked(ptrs, mask->words, mask->kept_dims, ws);
  } else {
    model.scores_batch(ptrs, ws);
  }
  const std::size_t k = model.num_classes();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double* row = ws.scores.data() + i * k;
    const auto predicted = std::max_element(row, row + k) - row;
    if (predicted == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(queries.size());
}

// ------------------------------------------------------- quarantine mask --

TEST(QuarantineMask, PartitionGeometryAndTailBits) {
  const std::size_t dim = 130;  // 3 words, 2-bit tail
  std::vector<bool> excluded(4, false);
  excluded[1] = true;
  const auto mask = build_quarantine_mask(dim, excluded);
  ASSERT_EQ(mask.words.size(), util::words_for_bits(dim));
  const auto [begin, end] = chunk_range(1, dim, 4);
  for (std::size_t i = 0; i < dim; ++i) {
    const bool kept = (mask.words[i / 64] >> (i % 64)) & 1;
    EXPECT_EQ(kept, i < begin || i >= end) << "bit " << i;
  }
  // Tail bits beyond the dimension must stay clear so kept_dims counts
  // real dimensions only (and masked scoring never counts padding).
  for (std::size_t i = dim; i < mask.words.size() * 64; ++i) {
    EXPECT_FALSE((mask.words[i / 64] >> (i % 64)) & 1) << "tail bit " << i;
  }
  EXPECT_EQ(mask.kept_dims, dim - (end - begin));
  EXPECT_EQ(mask.excluded_chunks, 1u);
}

TEST(MaskedScoring, AllOnesMaskIsBitIdenticalToFullScoring) {
  const auto world = make_world(0x11a5);
  const auto mask =
      build_quarantine_mask(kDim, std::vector<bool>(kChunks, false));
  ASSERT_EQ(mask.kept_dims, kDim);
  std::vector<const hv::BinVec*> ptrs(world.queries.size());
  for (std::size_t i = 0; i < world.queries.size(); ++i) {
    ptrs[i] = &world.queries[i];
  }
  model::ScoreWorkspace full_ws, masked_ws;
  world.model.scores_batch(ptrs, full_ws);
  world.model.scores_batch_masked(ptrs, mask.words, mask.kept_dims,
                                  masked_ws);
  // Same numerators, same denominator, same float op order: the scores
  // must be bit-identical, not merely close.
  for (std::size_t i = 0; i < ptrs.size() * kClasses; ++i) {
    EXPECT_EQ(masked_ws.scores[i], full_ws.scores[i]) << "score " << i;
  }
}

TEST(MaskedScoring, QuarantiningInvertedChunksRestoresAccuracy) {
  const auto world = make_world(0x2b0b);
  EXPECT_GE(accuracy(world.model, world.queries, world.labels), 0.95);

  // Invert most of class 0's plane, chunk by chunk — enough damage that
  // class 0's canaries land closer to other prototypes.
  auto damaged = world.model;
  std::vector<bool> excluded(kChunks, false);
  for (std::size_t c = 0; c < 12; ++c) {
    invert_chunk(damaged, 0, c, kChunks);
    excluded[c] = true;
  }
  const double broken = accuracy(damaged, world.queries, world.labels);
  EXPECT_LT(broken, 0.85);  // class 0 (1/5 of the queries) is lost

  // Excluding the damaged chunks from scoring recovers the clean
  // accuracy: the surviving 40% of the dimensions still separate the
  // classes (the holographic property the paper leans on).
  const auto mask = build_quarantine_mask(kDim, excluded);
  const double masked =
      accuracy(damaged, world.queries, world.labels, &mask);
  EXPECT_GE(masked, 0.95);
}

// ---------------------------------------------------- repair priority ----

TEST(RecoveryPriority, PrioritizedChunkSkipsConsensusBuffering) {
  const auto world = make_world(0x3c1a);
  model::RecoveryConfig config;
  config.chunks = kChunks;
  config.consensus_flags = 3;
  config.confidence_threshold = 0.70;
  // The absolute gate needs >= 10 observations per class; this test feeds
  // exactly one query, so disable it (documented sentinel value).
  config.absolute_gate_sigma = -100.0;

  // Without priority, the first trusted flagger is only buffered.
  {
    auto damaged = world.model;
    invert_chunk(damaged, 0, 4, kChunks);
    model::RecoveryEngine engine(damaged, config);
    const auto result = engine.observe(world.queries[0]);  // class-0 query
    ASSERT_TRUE(result.trusted);
    EXPECT_EQ(result.substituted_bits, 0u);
  }

  // With priority, the same single query substitutes immediately.
  {
    auto damaged = world.model;
    invert_chunk(damaged, 0, 4, kChunks);
    model::RecoveryEngine engine(damaged, config);
    engine.set_chunk_priority(0, 4, true);
    EXPECT_TRUE(engine.chunk_priority(0, 4));
    const auto result = engine.observe(world.queries[0]);
    ASSERT_TRUE(result.trusted);
    EXPECT_GT(result.substituted_bits, 0u);
    engine.clear_priorities();
    EXPECT_FALSE(engine.chunk_priority(0, 4));
  }

  EXPECT_THROW(
      {
        auto damaged = world.model;
        model::RecoveryEngine engine(damaged, config);
        engine.set_chunk_priority(kClasses, 0, true);
      },
      std::out_of_range);
}

// ------------------------------------------------------------- sentinel --

struct HookLog {
  std::vector<std::tuple<std::size_t, std::size_t, bool>> priorities;
  std::vector<std::vector<bool>> quarantines;
  std::vector<bool> breaker_changes;
};

SentinelConfig manual_sentinel_config() {
  SentinelConfig config;
  config.enabled = true;
  config.period = std::chrono::milliseconds(0);  // manual run_round()
  config.chunks = kChunks;
  config.chunk_drift_threshold = 0.10;
  config.bad_streak = 2;
  config.good_streak = 2;
  return config;
}

SentinelHooks logging_hooks(HookLog& log) {
  SentinelHooks hooks;
  hooks.prioritize = [&log](std::size_t cls, std::size_t chunk, bool on) {
    log.priorities.emplace_back(cls, chunk, on);
  };
  hooks.publish_quarantine = [&log](const std::vector<bool>& excluded) {
    log.quarantines.push_back(excluded);
  };
  hooks.set_breaker = [&log](bool open) { log.breaker_changes.push_back(open); };
  return hooks;
}

TEST(Sentinel, DriftVerdictsQuarantineAndReleaseWithHysteresis) {
  const auto world = make_world(0x5e11);
  ModelSnapshot snapshot{model::HdcModel(world.model)};
  HookLog log;
  Sentinel sentinel(snapshot, world.queries, world.labels,
                    manual_sentinel_config(), logging_hooks(log));

  // Clean round: everything healthy, no escalation.
  sentinel.run_round();
  auto report = sentinel.report();
  EXPECT_EQ(report.rounds, 1u);
  EXPECT_GE(report.raw_accuracy, 0.95);
  EXPECT_EQ(report.effective_accuracy, report.raw_accuracy);
  EXPECT_TRUE(std::all_of(report.verdicts.begin(), report.verdicts.end(),
                          [](ChunkHealth h) {
                            return h == ChunkHealth::kHealthy;
                          }));
  EXPECT_TRUE(log.priorities.empty());
  EXPECT_LT(sentinel.most_confident_class(), kClasses);

  // Damage chunk 3 of class 1 (100% local drift) and publish — this is a
  // scrubber-style publication, NOT a blessed one, so the reference stays.
  {
    auto damaged = *snapshot.acquire();
    invert_chunk(damaged, 1, 3, kChunks);
    snapshot.publish(std::move(damaged));
  }

  // Round 2: suspect (streak 1 of bad_streak 2), repair-prioritized.
  sentinel.run_round();
  report = sentinel.report();
  EXPECT_EQ(report.verdicts[1 * kChunks + 3], ChunkHealth::kSuspect);
  EXPECT_GT(report.chunk_drift[1 * kChunks + 3], 0.9);
  ASSERT_FALSE(log.priorities.empty());
  EXPECT_EQ(log.priorities.back(),
            std::make_tuple(std::size_t{1}, std::size_t{3}, true));
  EXPECT_EQ(report.quarantined_chunks, 0u);

  // Round 3: streak reaches bad_streak -> quarantined and published.
  sentinel.run_round();
  report = sentinel.report();
  EXPECT_EQ(report.verdicts[1 * kChunks + 3], ChunkHealth::kQuarantined);
  EXPECT_EQ(report.quarantined_chunks, 1u);
  ASSERT_EQ(log.quarantines.size(), 1u);
  EXPECT_TRUE(log.quarantines.back()[3]);
  EXPECT_EQ(sentinel.counters().quarantine_events, 1u);

  // Heal the model (publish a clean copy; still not blessed — drift just
  // drops to zero, exactly as if the scrubber repaired the planes).
  snapshot.publish(model::HdcModel(world.model));

  // Release needs good_streak clean rounds: still quarantined after one...
  sentinel.run_round();
  EXPECT_EQ(sentinel.report().quarantined_chunks, 1u);
  EXPECT_EQ(log.priorities.back(),
            std::make_tuple(std::size_t{1}, std::size_t{3}, false));
  // ...and released after the second.
  sentinel.run_round();
  report = sentinel.report();
  EXPECT_EQ(report.quarantined_chunks, 0u);
  EXPECT_EQ(report.verdicts[1 * kChunks + 3], ChunkHealth::kHealthy);
  ASSERT_EQ(log.quarantines.size(), 2u);
  EXPECT_FALSE(log.quarantines.back()[3]);
  EXPECT_EQ(sentinel.counters().release_events, 1u);
  EXPECT_TRUE(log.breaker_changes.empty());
}

TEST(Sentinel, BreakerTripsReloadsLastGoodAndCloses) {
  const auto world = make_world(0x6f00);
  ModelSnapshot snapshot{model::HdcModel(world.model)};
  HookLog log;
  auto config = manual_sentinel_config();
  config.breaker_floor = 0.55;
  config.breaker_window = 2;
  config.breaker_reload_retries = 3;
  config.breaker_backoff = std::chrono::milliseconds(1);
  auto hooks = logging_hooks(log);
  std::atomic<int> reload_calls{0};
  hooks.attempt_reload = [&] {
    reload_calls.fetch_add(1);
    snapshot.publish(model::HdcModel(world.model));  // last-good
    return true;
  };
  Sentinel sentinel(snapshot, world.queries, world.labels, config,
                    std::move(hooks));

  // Wreck every plane: predictions collapse to ~chance (1/kClasses).
  {
    auto wrecked = *snapshot.acquire();
    for (std::size_t cls = 0; cls < kClasses; ++cls) {
      for (std::size_t c = 0; c < kChunks; ++c) {
        invert_chunk(wrecked, cls, c, kChunks);
      }
    }
    snapshot.publish(std::move(wrecked));
  }

  sentinel.run_round();  // below floor, streak 1
  EXPECT_FALSE(sentinel.breaker_open());
  sentinel.run_round();  // streak 2: trip, reload, recover, close
  EXPECT_FALSE(sentinel.breaker_open());
  const auto counters = sentinel.counters();
  EXPECT_EQ(counters.breaker_trips, 1u);
  EXPECT_EQ(counters.reload_retries, 1u);
  EXPECT_EQ(reload_calls.load(), 1);
  // The breaker opened and closed within the round, both hook calls seen.
  ASSERT_EQ(log.breaker_changes.size(), 2u);
  EXPECT_TRUE(log.breaker_changes[0]);
  EXPECT_FALSE(log.breaker_changes[1]);
  // The reload rebased the reference; health is clean again.
  const auto report = sentinel.report();
  EXPECT_GE(report.raw_accuracy, 0.95);
  EXPECT_GE(sentinel.latest_accuracy(), 0.95);
}

// ------------------------------------------------- server-level ladder ---

TEST(ServerResilience, BreakerShedsLoadThenRecoversAfterReload) {
  const auto world = make_world(0x7a11);
  ServerConfig config;
  config.worker_threads = 2;
  config.enable_recovery = false;  // isolate the breaker from repairs
  config.sentinel.enabled = true;
  config.sentinel.period = std::chrono::milliseconds(0);  // manual rounds
  config.sentinel.chunks = kChunks;
  config.sentinel.breaker_floor = 0.55;
  config.sentinel.breaker_window = 1;
  config.sentinel.breaker_reload_retries = 0;  // stay open until we reload
  config.canaries = world.queries;
  config.canary_labels = world.labels;
  Server server(world.model, config);
  ASSERT_NE(server.sentinel(), nullptr);

  // Healthy round first: normal answers, no degradation flags.
  server.sentinel()->run_round();
  auto response = server.submit(world.queries[0]).get();
  EXPECT_EQ(response.predicted, world.labels[0]);
  EXPECT_FALSE(response.abstained);
  EXPECT_FALSE(response.degraded);

  // Scramble the serving model (direct-publish injection path) and let
  // the sentinel notice: the breaker must trip and stay open (no retries
  // configured).
  server.inject_faults(0.5, fault::AttackMode::kRandom, 0xbad);
  server.sentinel()->run_round();
  EXPECT_TRUE(server.sentinel()->breaker_open());
  auto stats = server.stats();
  EXPECT_TRUE(stats.breaker_open);
  EXPECT_EQ(stats.breaker_trips, 1u);

  // Open breaker: every response is an explicit abstention.
  for (std::size_t i = 0; i < 8; ++i) {
    const auto shed = server.submit(world.queries[i]).get();
    EXPECT_TRUE(shed.abstained);
    EXPECT_EQ(shed.predicted, -1);
  }
  EXPECT_GE(server.stats().abstained_responses, 8u);

  // Operator-style recovery: hot-reload the good model. The reload
  // rebases the sentinel; its next round sees healthy canaries and
  // closes the breaker.
  server.reload(world.model);
  server.sentinel()->run_round();
  EXPECT_FALSE(server.sentinel()->breaker_open());
  EXPECT_FALSE(server.stats().breaker_open);

  // Served predictions are consistent with direct inference again.
  const auto responses = server.predict_all(world.queries);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_FALSE(responses[i].abstained);
    if (responses[i].predicted == world.labels[i]) ++correct;
  }
  EXPECT_GE(static_cast<double>(correct) /
                static_cast<double>(responses.size()),
            0.95);
  server.shutdown();
}

TEST(ServerResilience, QuarantineMarksResponsesDegraded) {
  const auto world = make_world(0x8bad);
  ServerConfig config;
  config.worker_threads = 2;
  config.enable_recovery = false;
  config.sentinel.enabled = true;
  config.sentinel.period = std::chrono::milliseconds(0);
  config.sentinel.chunks = kChunks;
  // Light random damage drifts every chunk past this threshold, so the
  // quarantine trigger is deterministic; the 0.5 cap keeps the worst half.
  config.sentinel.chunk_drift_threshold = 0.01;
  config.sentinel.bad_streak = 1;      // quarantine on first sighting
  config.sentinel.good_streak = 1000;  // and keep it for the test
  config.canaries = world.queries;
  config.canary_labels = world.labels;
  Server server(world.model, config);

  server.inject_faults(0.05, fault::AttackMode::kRandom, 0xfeed);
  server.sentinel()->run_round();
  const auto report = server.sentinel()->report();
  ASSERT_GT(report.quarantined_chunks, 0u);
  ASSERT_LE(report.quarantined_chunks, kChunks / 2);  // cap respected
  EXPECT_GT(server.stats().quarantined_chunks, 0u);

  // Responses under quarantine are flagged degraded and still mostly
  // correct: 5% random damage barely moves the masked scores over the
  // surviving half of the dimensions.
  const auto responses = server.predict_all(world.queries);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_TRUE(responses[i].degraded);
    EXPECT_FALSE(responses[i].abstained);
    if (responses[i].predicted == world.labels[i]) ++correct;
  }
  EXPECT_GE(static_cast<double>(correct) /
                static_cast<double>(responses.size()),
            0.85);
  EXPECT_GE(server.stats().degraded_responses, responses.size());
  server.shutdown();
}

// ---------------------------------------------------------- chaos agent --

TEST(ChaosAgent, BudgetIsExactAndCampaignTerminates) {
  const auto world = make_world(0x9c0a);
  ModelSnapshot snapshot{model::HdcModel(world.model)};
  ChaosConfig config;
  config.rate = 0.05;
  config.steps_to_full = 37;
  config.mode = fault::AttackMode::kRandom;
  config.seed = 0xfade;
  ChaosAgent agent(snapshot, nullptr, config);

  const std::size_t total_bits =
      kClasses * util::words_for_bits(kDim) * 64;
  for (std::size_t i = 0; i < config.steps_to_full + 5; ++i) agent.tick();

  const auto counters = agent.counters();
  EXPECT_EQ(counters.ticks, config.steps_to_full);  // extra ticks no-op
  EXPECT_TRUE(agent.campaign_done());
  // Fractional carry makes the cumulative schedule exact to within one
  // flip of rate * total_bits.
  const double budget = config.rate * static_cast<double>(total_bits);
  EXPECT_NEAR(static_cast<double>(counters.flips_scheduled), budget, 1.5);
  EXPECT_EQ(counters.direct_publishes, counters.ticks);
  EXPECT_EQ(counters.publish_conflicts, 0u);
  // The damage actually landed on the published model.
  const auto damaged = snapshot.acquire();
  std::size_t changed = 0;
  for (std::size_t c = 0; c < kClasses; ++c) {
    changed += hv::hamming(world.model.class_vector(c).planes[0],
                           damaged->class_vector(c).planes[0]);
  }
  EXPECT_GT(changed, static_cast<std::size_t>(budget) / 2);
}

TEST(ChaosAgent, TargetedCampaignHitsOnlyTheProvidedClassPlane) {
  const auto world = make_world(0xa3a3);
  ModelSnapshot snapshot{model::HdcModel(world.model)};
  ChaosConfig config;
  config.rate = 0.02;
  config.steps_to_full = 10;
  config.mode = fault::AttackMode::kTargeted;
  config.seed = 0x7a57;
  const std::size_t victim = 2;
  ChaosAgent agent(snapshot, nullptr, config,
                   [victim] { return victim; });
  while (!agent.campaign_done()) agent.tick();

  const auto damaged = snapshot.acquire();
  for (std::size_t c = 0; c < kClasses; ++c) {
    const auto dist = hv::hamming(world.model.class_vector(c).planes[0],
                                  damaged->class_vector(c).planes[0]);
    if (c == victim) {
      EXPECT_GT(dist, 0u) << "victim plane untouched";
    } else {
      EXPECT_EQ(dist, 0u) << "non-victim class " << c << " was hit";
    }
  }
}

// ------------------------------------------------- full-stack live fire --

TEST(ServerResilience, ChaosScrubberSentinelStressUnderTraffic) {
  const auto world = make_world(0xbeef);
  ServerConfig config;
  config.worker_threads = 3;
  config.max_batch = 16;
  config.batch_linger = std::chrono::microseconds(100);
  config.enable_recovery = true;
  config.scrubber.recovery.chunks = kChunks;
  config.sentinel.enabled = true;
  config.sentinel.period = std::chrono::milliseconds(2);
  config.sentinel.chunks = kChunks;
  config.canaries = world.queries;
  config.canary_labels = world.labels;
  config.chaos.enabled = true;
  config.chaos.rate = 0.03;
  config.chaos.steps_to_full = 60;
  config.chaos.period = std::chrono::microseconds(300);
  config.chaos.mode = fault::AttackMode::kTargeted;  // exercises provider
  Server server(world.model, config);
  ASSERT_NE(server.chaos_agent(), nullptr);

  // Three producers hammer the server while chaos, scrubber and sentinel
  // all run; every accepted request must resolve.
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kPerProducer = 300;
  std::atomic<std::size_t> answered{0};
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const auto& q = world.queries[(t * kPerProducer + i) %
                                      world.queries.size()];
        auto response = server.submit(q).get();
        if (response.abstained || response.predicted >= 0) {
          answered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(answered.load(), kProducers * kPerProducer);

  server.drain();
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_GT(stats.chaos_ticks, 0u);
  EXPECT_GT(stats.canary_runs, 0u);
  server.shutdown();
  // Post-shutdown stats stay readable and consistent.
  EXPECT_EQ(server.stats().completed, stats.completed);
}

// -------------------------------------------------------------- stats ----

TEST(ServerResilience, ResetStatsZeroesCountersAndKeepsGauges) {
  const auto world = make_world(0xcafe);
  ServerConfig config;
  config.worker_threads = 2;
  Server server(world.model, config);

  std::ignore = server.predict_all(
      std::span<const hv::BinVec>(world.queries.data(), 10));
  server.reload(world.model);
  server.drain();
  auto stats = server.stats();
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_EQ(stats.reloads, 1u);
  const auto version = stats.model_version;
  EXPECT_GE(version, 1u);

  server.reset_stats();
  stats = server.stats();
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.reloads, 0u);
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.scrub_offered, 0u);
  EXPECT_EQ(stats.end_to_end.count, 0u);
  EXPECT_EQ(stats.model_version, version);  // gauge preserved

  // The server still serves after a reset, and new work is counted from
  // zero.
  const auto response = server.submit(world.queries[0]).get();
  EXPECT_EQ(response.predicted, world.labels[0]);
  server.drain();
  EXPECT_EQ(server.stats().completed, 1u);
  server.shutdown();
}

}  // namespace
}  // namespace robusthd::serve
