// Tests for robusthd::persist: crash-atomic save_model, typed load_model
// failures, WAL record framing, the EpochLog writer, recover_dir replay,
// and the Server persistence integration (including reloads racing
// recovery). The fork+SIGKILL cases are skipped under TSan (fork after
// threads start is undefined there); bench/crash_recovery is the heavier
// kill-9 campaign against a live server.
#include "robusthd/persist/epoch_log.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "robusthd/core/serialize.hpp"
#include "robusthd/hv/binvec.hpp"
#include "robusthd/model/hdc_model.hpp"
#include "robusthd/model/recovery.hpp"
#include "robusthd/persist/recover.hpp"
#include "robusthd/persist/wal.hpp"
#include "robusthd/serve/server.hpp"
#include "robusthd/util/bitops.hpp"
#include "robusthd/util/crc32c.hpp"
#include "robusthd/util/fsio.hpp"
#include "robusthd/util/rng.hpp"

#if defined(__SANITIZE_THREAD__)
#define ROBUSTHD_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ROBUSTHD_TSAN 1
#endif
#endif

namespace robusthd::persist {
namespace {

constexpr std::size_t kDim = 1024;
constexpr std::size_t kClasses = 4;

std::string temp_dir() {
  char tmpl[] = "/tmp/robusthd_persist_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

void remove_tree(const std::string& dir) {
  for (const auto& name : util::list_dir(dir)) {
    util::remove_file(dir + "/" + name);
  }
  ::rmdir(dir.c_str());
}

model::HdcModel small_model(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<hv::BinVec> train;
  std::vector<int> labels;
  for (std::size_t c = 0; c < kClasses; ++c) {
    auto proto = hv::BinVec::random(kDim, rng);
    for (int i = 0; i < 8; ++i) {
      auto v = proto;
      for (std::size_t d = 0; d < kDim; ++d) {
        if (rng.bernoulli(0.04)) v.flip(d);
      }
      train.push_back(std::move(v));
      labels.push_back(static_cast<int>(c));
    }
  }
  return model::HdcModel::train(train, labels, kClasses, {});
}

bool models_bit_identical(const model::HdcModel& a, const model::HdcModel& b) {
  if (a.num_classes() != b.num_classes() || a.dimension() != b.dimension() ||
      a.precision_bits() != b.precision_bits()) {
    return false;
  }
  for (std::size_t c = 0; c < a.num_classes(); ++c) {
    const auto& pa = a.class_vector(c).planes;
    const auto& pb = b.class_vector(c).planes;
    if (pa.size() != pb.size()) return false;
    for (std::size_t p = 0; p < pa.size(); ++p) {
      const auto wa = pa[p].words();
      const auto wb = pb[p].words();
      if (!std::equal(wa.begin(), wa.end(), wb.begin(), wb.end())) {
        return false;
      }
    }
  }
  return true;
}

// ------------------------------------------------- atomic save_model --

#ifndef ROBUSTHD_TSAN
// Kill a child mid-save at every microsecond offset we can hit: the
// destination must always hold the complete old blob or the complete new
// one — a torn RHD2 file at `path` is the bug this PR fixes.
TEST(AtomicSave, Kill9MidSaveNeverTearsTheDestination) {
  const auto dir = temp_dir();
  const auto path = dir + "/model.rhd2";
  const auto old_model = small_model(1);
  const auto new_model = small_model(2);
  core::save_model(old_model, path);

  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: save over the existing file in a tight loop until killed.
      for (;;) core::save_model(new_model, path);
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(50 + rng.next() % 3000));
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);

    // Whatever instant the kill landed on, the destination validates and
    // equals one of the two complete models.
    model::HdcModel loaded;
    ASSERT_NO_THROW(loaded = core::load_model_planes(path));
    EXPECT_TRUE(models_bit_identical(loaded, old_model) ||
                models_bit_identical(loaded, new_model));
  }
  remove_tree(dir);
}
#endif  // !ROBUSTHD_TSAN

TEST(AtomicSave, LeftoverTempFilesAreNeverTruncatedInto) {
  const auto dir = temp_dir();
  const auto path = dir + "/model.rhd2";
  const auto m = small_model(3);
  core::save_model(m, path);
  core::save_model(m, path);  // O_EXCL picks a fresh temp name every time
  EXPECT_TRUE(models_bit_identical(core::load_model_planes(path), m));
  remove_tree(dir);
}

// --------------------------------------------- typed load_model errors --

TEST(LoadModel, EmptyFileThrowsTypedEmptyError) {
  const auto dir = temp_dir();
  const auto path = dir + "/empty.rhd2";
  util::atomic_write_file(path, {});
  try {
    core::load_model_planes(path);
    FAIL() << "empty file must not load";
  } catch (const core::SerializeError& e) {
    EXPECT_EQ(e.code, core::SerializeError::Code::kEmpty);
  }
  remove_tree(dir);
}

TEST(LoadModel, TruncatedFileThrowsBeforePayloadAllocation) {
  const auto dir = temp_dir();
  const auto path = dir + "/trunc.rhd2";
  const auto blob = core::serialize_model(small_model(4), {});
  // Valid header, half the payload: the loader must reject on the size
  // check derived from the validated header, not on a short read of a
  // payload-sized buffer.
  util::atomic_write_file(
      path, std::span<const std::byte>(blob.data(), blob.size() / 2));
  try {
    core::load_model_planes(path);
    FAIL() << "truncated file must not load";
  } catch (const core::SerializeError& e) {
    EXPECT_TRUE(e.code == core::SerializeError::Code::kTruncated ||
                e.code == core::SerializeError::Code::kIntegrity);
  }
  remove_tree(dir);
}

TEST(LoadModel, HostileHeaderIsBoundedBeforeAllocation) {
  const auto dir = temp_dir();
  const auto path = dir + "/hostile.rhd2";
  auto blob = core::serialize_model(small_model(5), {});
  // Lie about the dimension: 2^40 bits/plane would be a 128 GiB reserve
  // if the loader trusted tellg()/header sizes before validating them.
  // The header CRC is re-fixed so the *bounds* check is what rejects it.
  const std::uint64_t huge = 1ull << 40;
  std::memcpy(blob.data() + 8, &huge, sizeof(huge));
  const std::uint32_t fixed_crc = util::crc32c(blob.data(), 60);
  std::memcpy(blob.data() + 60, &fixed_crc, sizeof(fixed_crc));
  util::atomic_write_file(path, blob);
  try {
    core::load_model_planes(path);
    FAIL() << "hostile header must not load";
  } catch (const core::SerializeError& e) {
    EXPECT_EQ(e.code, core::SerializeError::Code::kMalformed);
  }
  remove_tree(dir);
}

// ----------------------------------------------------- record framing --

TEST(WalFraming, RecordsRoundTripThroughSegmentReader) {
  std::vector<std::byte> segment;
  std::vector<std::byte> payload;

  encode_base_ref(payload, BaseRef{7, 42});
  encode_record(segment, RecordType::kBaseRef, 0, payload);

  payload.clear();
  PlaneDelta delta{43, 2, 0, 5, {0xDEADBEEFull, 0x1234ull, ~0ull}};
  encode_plane_delta(payload, delta);
  encode_record(segment, RecordType::kPlaneDelta, 1, payload);

  payload.clear();
  model::RecoveryEngineState state;
  state.total_updates = 11;
  state.total_substituted_bits = 222;
  state.best_health = 0.75;
  state.frozen = true;
  state.class_repairs = {1, 0, 3, 0};
  encode_recovery_state(payload, state);
  encode_record(segment, RecordType::kRecoveryState, 2, payload);

  payload.clear();
  encode_epoch_close(payload, EpochClose{9, 0xABCDEF01u});
  encode_record(segment, RecordType::kEpochClose, 3, payload);

  SegmentReader reader(segment);
  RecordView record;

  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record.type, RecordType::kBaseRef);
  const auto ref = decode_base_ref(record.payload);
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->generation, 7u);
  EXPECT_EQ(ref->base_version, 42u);

  ASSERT_TRUE(reader.next(record));
  const auto d = decode_plane_delta(record.payload);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->model_version, 43u);
  EXPECT_EQ(d->cls, 2u);
  EXPECT_EQ(d->word_begin, 5u);
  EXPECT_EQ(d->words, delta.words);

  ASSERT_TRUE(reader.next(record));
  const auto s = decode_recovery_state(record.payload);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->total_updates, 11u);
  EXPECT_EQ(s->total_substituted_bits, 222u);
  EXPECT_DOUBLE_EQ(s->best_health, 0.75);
  EXPECT_TRUE(s->frozen);
  EXPECT_EQ(s->class_repairs, state.class_repairs);

  ASSERT_TRUE(reader.next(record));
  const auto close = decode_epoch_close(record.payload);
  ASSERT_TRUE(close.has_value());
  EXPECT_EQ(close->epoch, 9u);
  EXPECT_EQ(close->state_crc, 0xABCDEF01u);

  EXPECT_FALSE(reader.next(record));
  EXPECT_FALSE(reader.torn());  // clean end, not a tear
  EXPECT_EQ(reader.offset(), segment.size());
}

TEST(WalFraming, TornTailStopsCleanlyAtTheLastGoodRecord) {
  std::vector<std::byte> segment;
  std::vector<std::byte> payload;
  encode_base_ref(payload, BaseRef{0, 0});
  encode_record(segment, RecordType::kBaseRef, 0, payload);
  const std::size_t good = segment.size();
  payload.clear();
  encode_epoch_close(payload, EpochClose{1, 0});
  encode_record(segment, RecordType::kEpochClose, 1, payload);

  // Every proper prefix that cuts into the second record: one good
  // record, then a tear — never a throw, never a partial record.
  for (std::size_t cut = good + 1; cut < segment.size(); ++cut) {
    SegmentReader reader(std::span<const std::byte>(segment.data(), cut));
    RecordView record;
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.type, RecordType::kBaseRef);
    EXPECT_FALSE(reader.next(record));
    EXPECT_TRUE(reader.torn()) << "cut at " << cut;
    EXPECT_EQ(reader.offset(), good);
  }
}

TEST(WalFraming, OverboundLengthIsRejectedWithoutAllocation) {
  std::vector<std::byte> segment;
  std::vector<std::byte> payload;
  encode_base_ref(payload, BaseRef{0, 0});
  encode_record(segment, RecordType::kBaseRef, 0, payload);
  // Forge a payload_bytes far past kMaxRecordPayload with a fixed-up
  // header CRC: the reader must stop at the bound check, not trust the
  // length.
  std::uint32_t huge = 0x7FFFFFFFu;
  std::memcpy(segment.data() + 16, &huge, sizeof(huge));
  const std::uint32_t crc =
      util::crc32c(segment.data(), 28);
  std::memcpy(segment.data() + 28, &crc, sizeof(crc));
  SegmentReader reader(segment);
  RecordView record;
  EXPECT_FALSE(reader.next(record));
  EXPECT_TRUE(reader.torn());
}

// ------------------------------------------- EpochLog + recover_dir --

PersistConfig fast_config(const std::string& dir) {
  PersistConfig config;
  config.dir = dir;
  config.epoch_period = std::chrono::milliseconds(2);
  return config;
}

TEST(EpochLog, ReplayIsBitIdenticalToTheLastClosedEpoch) {
  const auto dir = temp_dir();
  auto model = small_model(11);
  const auto blob = core::serialize_model(model, {});
  util::Xoshiro256 rng(13);

  {
    EpochLog log(fast_config(dir), blob, 0);
    // Mutate a copy the way the scrubber would: rewrite word ranges and
    // journal exactly those ranges.
    for (std::uint64_t version = 1; version <= 20; ++version) {
      const auto cls = rng.next() % kClasses;
      auto words = model.class_vector(cls).planes[0].mutable_words();
      const std::size_t begin = rng.next() % (words.size() - 4);
      const std::size_t count = 1 + rng.next() % 4;
      std::vector<std::uint64_t> fresh(count);
      for (auto& w : fresh) w = rng.next();
      std::copy(fresh.begin(), fresh.end(),
                words.begin() + static_cast<std::ptrdiff_t>(begin));
      model.class_vector(cls).planes[0].mask_tail();
      std::copy(words.begin() + static_cast<std::ptrdiff_t>(begin),
                words.begin() + static_cast<std::ptrdiff_t>(begin + count),
                fresh.begin());

      PlaneWrite write;
      write.cls = static_cast<std::uint32_t>(cls);
      write.plane = 0;
      write.word_begin = begin;
      write.words = std::move(fresh);
      log.append_publication(version, {std::move(write)}, std::nullopt);
    }
    log.close_epoch();
    const auto counters = log.counters();
    EXPECT_GE(counters.epochs_closed, 1u);
    EXPECT_EQ(counters.deltas_appended, 20u);
    EXPECT_EQ(counters.io_errors, 0u);
  }

  const auto rec = recover_dir(dir);
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->stats.state_crc_ok);
  EXPECT_FALSE(rec->stats.torn_tail);
  EXPECT_EQ(rec->model_version, 20u);
  model.sync_arena();
  EXPECT_TRUE(models_bit_identical(rec->model, model));
  remove_tree(dir);
}

TEST(EpochLog, EngineStateRoundTripsThroughTheLog) {
  const auto dir = temp_dir();
  const auto model = small_model(17);
  {
    EpochLog log(fast_config(dir), core::serialize_model(model, {}), 0);
    model::RecoveryEngineState state;
    state.total_updates = 99;
    state.total_substituted_bits = 4321;
    state.best_health = 0.5;
    state.frozen = false;
    state.class_repairs = {4, 3, 2, 1};
    log.append_publication(1, {}, state);
    log.close_epoch();
  }
  const auto rec = recover_dir(dir);
  ASSERT_TRUE(rec.has_value());
  ASSERT_TRUE(rec->engine_state.has_value());
  EXPECT_EQ(rec->engine_state->total_updates, 99u);
  EXPECT_EQ(rec->engine_state->total_substituted_bits, 4321u);
  EXPECT_EQ(rec->engine_state->class_repairs,
            (std::vector<std::uint64_t>{4, 3, 2, 1}));
  remove_tree(dir);
}

TEST(EpochLog, UnterminatedEpochIsDiscardedOnReplay) {
  const auto dir = temp_dir();
  auto model = small_model(19);
  const auto blob = core::serialize_model(model, {});
  {
    EpochLog log(fast_config(dir), blob, 0);
    log.close_epoch();  // epoch 0: nothing — no close record written
  }
  // Append a delta with NO following EpochClose, simulating a kill-9
  // between write and fsync/close: replay must ignore it.
  std::uint64_t gen = 0;
  for (const auto& name : util::list_dir(dir)) {
    std::uint64_t g = 0;
    if (parse_base_file_name(name, g)) gen = g;
  }
  {
    auto segment =
        util::read_file(dir + "/" + segment_file_name(gen, 0), 1u << 20);
    std::vector<std::byte> payload;
    encode_plane_delta(payload, PlaneDelta{5, 0, 0, 0, {~0ull, ~0ull}});
    encode_record(segment, RecordType::kPlaneDelta, 99, payload);
    util::atomic_write_file(dir + "/" + segment_file_name(gen, 0), segment);
  }
  const auto rec = recover_dir(dir);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->stats.discarded_records, 1u);
  model.sync_arena();
  EXPECT_TRUE(models_bit_identical(rec->model, model));  // delta NOT applied
  remove_tree(dir);
}

TEST(EpochLog, RotationFencesStalePublications) {
  const auto dir = temp_dir();
  const auto model_a = small_model(23);
  auto model_b = small_model(29);
  {
    EpochLog log(fast_config(dir), core::serialize_model(model_a, {}), 0);
    // Version-3 delta queued BEFORE a rotation to base_version 10: by the
    // time the log thread drains, the fence must drop it.
    PlaneWrite write;
    write.cls = 0;
    write.plane = 0;
    write.word_begin = 0;
    write.words = {~0ull};
    log.append_publication(3, {std::move(write)}, std::nullopt);
    log.rotate_generation(core::serialize_model(model_b, {}), 10);
    log.close_epoch();
    // Order within the batch is preserved: the publication precedes the
    // rotation, so it lands in generation 0 (fine — gen 0 is deleted).
    // Now a genuinely stale one against the NEW generation:
    PlaneWrite stale;
    stale.cls = 0;
    stale.plane = 0;
    stale.word_begin = 0;
    stale.words = {~0ull};
    log.append_publication(9, {std::move(stale)}, std::nullopt);  // <= 10
    log.close_epoch();
    EXPECT_EQ(log.counters().stale_discards, 1u);
    EXPECT_GE(log.counters().rotations, 1u);
    EXPECT_EQ(log.generation(), 1u);
  }
  const auto rec = recover_dir(dir);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->generation, 1u);
  model_b.sync_arena();
  EXPECT_TRUE(models_bit_identical(rec->model, model_b));
  remove_tree(dir);
}

TEST(EpochLog, CompactionFoldsTheWalIntoAFreshBase) {
  const auto dir = temp_dir();
  auto model = small_model(31);
  auto config = fast_config(dir);
  config.compact_bytes = 2048;  // force compaction almost immediately
  {
    EpochLog log(config, core::serialize_model(model, {}), 0);
    util::Xoshiro256 rng(37);
    for (std::uint64_t version = 1; version <= 30; ++version) {
      const auto cls = rng.next() % kClasses;
      auto words = model.class_vector(cls).planes[0].mutable_words();
      const std::size_t begin = rng.next() % (words.size() - 2);
      std::vector<std::uint64_t> fresh{rng.next(), rng.next()};
      std::copy(fresh.begin(), fresh.end(),
                words.begin() + static_cast<std::ptrdiff_t>(begin));
      model.class_vector(cls).planes[0].mask_tail();
      std::copy(words.begin() + static_cast<std::ptrdiff_t>(begin),
                words.begin() + static_cast<std::ptrdiff_t>(begin + 2),
                fresh.begin());
      PlaneWrite write;
      write.cls = static_cast<std::uint32_t>(cls);
      write.plane = 0;
      write.word_begin = begin;
      write.words = std::move(fresh);
      log.append_publication(version, {std::move(write)}, std::nullopt);
      log.close_epoch();
    }
    EXPECT_GE(log.counters().compactions, 1u);
  }
  const auto rec = recover_dir(dir);
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->stats.state_crc_ok);
  EXPECT_GE(rec->generation, 1u);
  model.sync_arena();
  EXPECT_TRUE(models_bit_identical(rec->model, model));
  remove_tree(dir);
}

TEST(Recover, EmptyDirectoryIsNullopt) {
  const auto dir = temp_dir();
  EXPECT_FALSE(has_state(dir));
  EXPECT_FALSE(recover_dir(dir).has_value());
  remove_tree(dir);
}

// ------------------------------------------- Server integration --------

serve::ServerConfig persist_server_config(const std::string& dir) {
  serve::ServerConfig config;
  config.worker_threads = 2;
  config.persist.dir = dir;
  config.persist.epoch_period = std::chrono::milliseconds(2);
  return config;
}

TEST(ServerPersist, GracefulShutdownRecoversBitIdentical) {
  const auto dir = temp_dir();
  auto model = small_model(41);
  util::Xoshiro256 rng(43);
  std::vector<hv::BinVec> queries;
  for (int i = 0; i < 60; ++i) {
    auto q = model.class_vector(rng.next() % kClasses).planes[0];
    for (std::size_t d = 0; d < kDim; ++d) {
      if (rng.bernoulli(0.04)) q.flip(d);
    }
    queries.push_back(std::move(q));
  }

  model::HdcModel at_shutdown;
  {
    serve::Server server(model, persist_server_config(dir));
    server.inject_faults(0.05, fault::AttackMode::kRandom, 7);
    for (const auto& q : queries) (void)server.submit(q).get();
    server.persist_barrier();
    // Capture *after* shutdown: the scrubber cannot publish past this
    // point, and shutdown's final epoch close makes that last snapshot
    // the durable one.
    server.shutdown();
    at_shutdown = *server.current_model();
  }
  ASSERT_TRUE(has_state(dir));
  auto recovered = serve::Server::recover(dir, persist_server_config(dir));
  EXPECT_TRUE(recovered->replay_stats().state_crc_ok);
  // Graceful shutdown closes a final epoch over the last publication, so
  // recovery resumes the exact serving state.
  EXPECT_TRUE(models_bit_identical(*recovered->current_model(), at_shutdown));
  // ...and the recovered server serves.
  const auto r = recovered->submit(queries[0]).get();
  EXPECT_GE(r.predicted, 0);
  recovered->shutdown();
  remove_tree(dir);
}

TEST(ServerPersist, ReloadRotatesTheGenerationAndRecoversTheNewModel) {
  const auto dir = temp_dir();
  const auto model_a = small_model(47);
  auto model_b = small_model(53);
  {
    serve::Server server(model_a, persist_server_config(dir));
    server.reload(model_b);
    server.persist_barrier();
    const auto stats = server.stats();
    EXPECT_GE(stats.wal_rotations, 1u);
    server.shutdown();
  }
  auto recovered = serve::Server::recover(dir, persist_server_config(dir));
  model_b.sync_arena();
  EXPECT_TRUE(models_bit_identical(*recovered->current_model(), model_b));
  EXPECT_GT(recovered->stats().replay_records, 0u);
  recovered->shutdown();
  remove_tree(dir);
}

// TSan regression: reloads racing recovery's engine-state rehydration and
// live traffic. No fork — this is the test the TSan job runs.
TEST(ServerPersist, ReloadRacingRecoveredServerIsClean) {
  const auto dir = temp_dir();
  auto model = small_model(59);
  {
    serve::Server server(model, persist_server_config(dir));
    server.inject_faults(0.02, fault::AttackMode::kRandom, 3);
    server.persist_barrier();
    server.shutdown();
  }
  auto recovered = serve::Server::recover(dir, persist_server_config(dir));
  std::thread reloader([&] {
    for (int i = 0; i < 20; ++i) {
      recovered->reload(model);
    }
  });
  util::Xoshiro256 rng(61);
  for (int i = 0; i < 100; ++i) {
    // Const access: the reloader thread is concurrently copying `model`,
    // and the mutable class_vector overload writes the arena-valid flag.
    auto q = std::as_const(model).class_vector(rng.next() % kClasses).planes[0];
    (void)recovered->submit(std::move(q)).get();
  }
  reloader.join();
  recovered->persist_barrier();
  const auto stats = recovered->stats();
  EXPECT_EQ(stats.persist_io_errors, 0u);
  recovered->shutdown();
  // The directory must still replay after all that churn.
  EXPECT_TRUE(recover_dir(dir).has_value());
  remove_tree(dir);
}

}  // namespace
}  // namespace robusthd::persist
