// Equivalence tests for the runtime-dispatched SIMD kernel layer.
//
// Every available ISA tier (scalar / AVX2 / AVX-512) is checked bit-for-bit
// against a naive per-word reference on awkward dimensions (sub-word,
// exactly one word, word+1, and the paper-scale 10k), on adversarial word
// patterns (all-zeros, all-ones), and at the odd query/plane counts that
// exercise the 4-query block tails of the distance-matrix kernel. The
// higher layers that were rewired onto the kernels (BinVec rotation and
// ranged Hamming, batch scoring, zero-allocation encoding, the crossbar
// cost cross-check) are then held to the same standard: bit-identical to
// their scalar-era semantics.
#include "robusthd/kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "robusthd/hv/accumulator.hpp"
#include "robusthd/hv/binvec.hpp"
#include "robusthd/hv/encoder.hpp"
#include "robusthd/model/hdc_model.hpp"
#include "robusthd/pim/gpu_ref.hpp"
#include "robusthd/pim/hdc_kernels.hpp"
#include "robusthd/util/bitops.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd {
namespace {

constexpr std::array<kernels::Isa, 3> kAllIsas = {
    kernels::Isa::kScalar, kernels::Isa::kAvx2, kernels::Isa::kAvx512};

// ---- naive references (independent of the kernel layer) -----------------

std::size_t ref_popcount(const std::uint64_t* w, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(w[i]));
  }
  return total;
}

std::size_t ref_hamming(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

std::size_t ref_hamming_masked(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n, std::uint64_t first,
                               std::uint64_t last) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t x = a[i] ^ b[i];
    if (i == 0) x &= first;
    if (i == n - 1) x &= last;
    total += static_cast<std::size_t>(std::popcount(x));
  }
  return total;
}

std::vector<std::uint64_t> random_words(std::size_t n, util::Xoshiro256& rng) {
  std::vector<std::uint64_t> w(n);
  rng.fill(w);
  return w;
}

/// Word counts covering dims 63, 64, 65 and 10000, plus blocks around the
/// SIMD vector widths (4 and 8 words) and the unrolled 16-vector AVX2 body.
const std::vector<std::size_t>& word_sizes() {
  static const std::vector<std::size_t> sizes = {1,  2,  3,  4,  5,  7, 8,
                                                 9,  15, 16, 17, 31, 32, 33,
                                                 63, 64, 65, 157};
  return sizes;
}

TEST(KernelDispatch, ScalarAlwaysAvailable) {
  ASSERT_NE(kernels::ops_for(kernels::Isa::kScalar), nullptr);
  EXPECT_TRUE(kernels::isa_supported(kernels::Isa::kScalar));
  EXPECT_STREQ(kernels::isa_name(kernels::Isa::kScalar), "scalar");
  // The active table is one of the three tiers and is non-null.
  EXPECT_NE(kernels::ops_for(kernels::active_isa()), nullptr);
}

TEST(KernelEquivalence, PopcountAllIsas) {
  util::Xoshiro256 rng(0x9c1);
  for (const auto isa : kAllIsas) {
    const auto* ops = kernels::ops_for(isa);
    if (ops == nullptr) continue;
    for (const std::size_t n : word_sizes()) {
      const auto w = random_words(n, rng);
      EXPECT_EQ(ops->popcount(w.data(), n), ref_popcount(w.data(), n))
          << kernels::isa_name(isa) << " n=" << n;
      const std::vector<std::uint64_t> ones(n, ~0ULL);
      const std::vector<std::uint64_t> zeros(n, 0ULL);
      EXPECT_EQ(ops->popcount(ones.data(), n), n * 64);
      EXPECT_EQ(ops->popcount(zeros.data(), n), 0u);
    }
    EXPECT_EQ(ops->popcount(nullptr, 0), 0u) << kernels::isa_name(isa);
  }
}

TEST(KernelEquivalence, HammingAllIsas) {
  util::Xoshiro256 rng(0xbeef);
  for (const auto isa : kAllIsas) {
    const auto* ops = kernels::ops_for(isa);
    if (ops == nullptr) continue;
    for (const std::size_t n : word_sizes()) {
      const auto a = random_words(n, rng);
      const auto b = random_words(n, rng);
      EXPECT_EQ(ops->hamming(a.data(), b.data(), n),
                ref_hamming(a.data(), b.data(), n))
          << kernels::isa_name(isa) << " n=" << n;
      const std::vector<std::uint64_t> ones(n, ~0ULL);
      const std::vector<std::uint64_t> zeros(n, 0ULL);
      EXPECT_EQ(ops->hamming(ones.data(), zeros.data(), n), n * 64);
      EXPECT_EQ(ops->hamming(a.data(), a.data(), n), 0u);
    }
    EXPECT_EQ(ops->hamming(nullptr, nullptr, 0), 0u);
  }
}

TEST(KernelEquivalence, HammingMaskedAllIsas) {
  util::Xoshiro256 rng(0x3a5c);
  const std::array<std::uint64_t, 5> edge_masks = {
      0ULL, ~0ULL, 1ULL, 0x8000000000000000ULL, 0x00ffff0000ffff00ULL};
  for (const auto isa : kAllIsas) {
    const auto* ops = kernels::ops_for(isa);
    if (ops == nullptr) continue;
    for (const std::size_t n : word_sizes()) {
      const auto a = random_words(n, rng);
      const auto b = random_words(n, rng);
      for (const auto first : edge_masks) {
        for (const auto last : edge_masks) {
          EXPECT_EQ(ops->hamming_masked(a.data(), b.data(), n, first, last),
                    ref_hamming_masked(a.data(), b.data(), n, first, last))
              << kernels::isa_name(isa) << " n=" << n << " first=" << first
              << " last=" << last;
        }
      }
    }
  }
}

TEST(KernelEquivalence, HammingMatrixAllIsas) {
  util::Xoshiro256 rng(0x7ab1e);
  // Odd query/plane counts hit the 4-query block tail and the per-plane
  // remainder paths of every variant.
  const std::array<std::pair<std::size_t, std::size_t>, 6> shapes = {{
      {1, 1}, {1, 7}, {3, 2}, {4, 4}, {5, 3}, {9, 11}}};
  for (const auto isa : kAllIsas) {
    const auto* ops = kernels::ops_for(isa);
    if (ops == nullptr) continue;
    for (const std::size_t words : {1, 2, 5, 17, 157}) {
      for (const auto [nq, np] : shapes) {
        std::vector<std::vector<std::uint64_t>> qs, ps;
        std::vector<const std::uint64_t*> qp, pp;
        for (std::size_t i = 0; i < nq; ++i) {
          qs.push_back(random_words(words, rng));
          qp.push_back(qs.back().data());
        }
        for (std::size_t i = 0; i < np; ++i) {
          ps.push_back(random_words(words, rng));
          pp.push_back(ps.back().data());
        }
        std::vector<std::uint32_t> out(nq * np, 0xdeadbeef);
        ops->hamming_matrix(qp.data(), nq, pp.data(), np, words, out.data());
        for (std::size_t q = 0; q < nq; ++q) {
          for (std::size_t p = 0; p < np; ++p) {
            EXPECT_EQ(out[q * np + p],
                      ref_hamming(qp[q], pp[p], words))
                << kernels::isa_name(isa) << " words=" << words << " q=" << q
                << " p=" << p;
          }
        }
      }
    }
  }
}

TEST(KernelEquivalence, HammingMatrixMaskedAllIsas) {
  util::Xoshiro256 rng(0x9a5eed);
  const auto ref_masked = [](const std::uint64_t* a, const std::uint64_t* b,
                             const std::uint64_t* m, std::size_t n) {
    std::uint32_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total += static_cast<std::uint32_t>(std::popcount((a[i] ^ b[i]) & m[i]));
    }
    return total;
  };
  const std::array<std::pair<std::size_t, std::size_t>, 6> shapes = {{
      {1, 1}, {1, 7}, {3, 2}, {4, 4}, {5, 3}, {9, 11}}};
  for (const auto isa : kAllIsas) {
    const auto* ops = kernels::ops_for(isa);
    if (ops == nullptr) continue;
    for (const std::size_t words : {1, 2, 5, 17, 157}) {
      // Random mask plus the two degenerate masks: all-ones must reproduce
      // the unmasked matrix kernel exactly; all-zeros must return 0.
      const auto random_mask = random_words(words, rng);
      const std::vector<std::uint64_t> ones(words, ~0ULL);
      const std::vector<std::uint64_t> zeros(words, 0ULL);
      for (const auto [nq, np] : shapes) {
        std::vector<std::vector<std::uint64_t>> qs, ps;
        std::vector<const std::uint64_t*> qp, pp;
        for (std::size_t i = 0; i < nq; ++i) {
          qs.push_back(random_words(words, rng));
          qp.push_back(qs.back().data());
        }
        for (std::size_t i = 0; i < np; ++i) {
          ps.push_back(random_words(words, rng));
          pp.push_back(ps.back().data());
        }
        for (const auto* mask :
             {&random_mask, static_cast<const std::vector<std::uint64_t>*>(
                                &ones),
              static_cast<const std::vector<std::uint64_t>*>(&zeros)}) {
          std::vector<std::uint32_t> out(nq * np, 0xdeadbeef);
          ops->hamming_matrix_masked(qp.data(), nq, pp.data(), np, words,
                                     mask->data(), out.data());
          for (std::size_t q = 0; q < nq; ++q) {
            for (std::size_t p = 0; p < np; ++p) {
              EXPECT_EQ(out[q * np + p],
                        ref_masked(qp[q], pp[p], mask->data(), words))
                  << kernels::isa_name(isa) << " words=" << words
                  << " q=" << q << " p=" << p;
            }
          }
        }
        // All-ones mask == the unmasked matrix kernel, element for element.
        std::vector<std::uint32_t> masked_out(nq * np, 0);
        std::vector<std::uint32_t> plain_out(nq * np, 1);
        ops->hamming_matrix_masked(qp.data(), nq, pp.data(), np, words,
                                   ones.data(), masked_out.data());
        ops->hamming_matrix(qp.data(), nq, pp.data(), np, words,
                            plain_out.data());
        EXPECT_EQ(masked_out, plain_out)
            << kernels::isa_name(isa) << " words=" << words;
      }
    }
  }
}

// ---- BinVec paths rewired onto the kernels ------------------------------

TEST(BinVecKernels, CountOnesAndHammingMatchPerBit) {
  util::Xoshiro256 rng(0xc0de);
  for (const std::size_t dim : {63, 64, 65, 10000}) {
    const auto a = hv::BinVec::random(dim, rng);
    const auto b = hv::BinVec::random(dim, rng);
    std::size_t ones = 0, diff = 0;
    for (std::size_t i = 0; i < dim; ++i) {
      ones += a.get(i);
      diff += a.get(i) != b.get(i);
    }
    EXPECT_EQ(a.count_ones(), ones) << "dim=" << dim;
    EXPECT_EQ(hv::hamming(a, b), diff) << "dim=" << dim;
  }
}

TEST(BinVecKernels, HammingRangeMatchesPerBitAndHandlesEmpty) {
  util::Xoshiro256 rng(0x4a11);
  for (const std::size_t dim : {63, 64, 65, 10000}) {
    const auto a = hv::BinVec::random(dim, rng);
    const auto b = hv::BinVec::random(dim, rng);
    const std::array<std::pair<std::size_t, std::size_t>, 7> ranges = {{
        {0, dim}, {0, 1}, {dim - 1, dim}, {0, 0}, {dim, dim},
        {dim / 3, 2 * dim / 3}, {dim / 2, dim / 2}}};
    for (const auto [begin, end] : ranges) {
      std::size_t expected = 0;
      for (std::size_t i = begin; i < end; ++i) {
        expected += a.get(i) != b.get(i);
      }
      EXPECT_EQ(hv::hamming_range(a, b, begin, end), expected)
          << "dim=" << dim << " [" << begin << "," << end << ")";
    }
  }
}

TEST(BinVecKernels, RotatedMatchesPerBitReference) {
  util::Xoshiro256 rng(0x5107);
  for (const std::size_t dim : {63, 64, 65, 130, 10000}) {
    const auto v = hv::BinVec::random(dim, rng);
    for (const std::size_t amount :
         {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
          std::size_t{65}, dim / 2, dim - 1, dim}) {
      const auto r = v.rotated(amount);
      for (std::size_t i = 0; i < dim; ++i) {
        ASSERT_EQ(r.get((i + amount) % dim), v.get(i))
            << "dim=" << dim << " amount=" << amount << " bit=" << i;
      }
      // Tail invariant survives the word-level funnel shift.
      if ((dim & 63) != 0) {
        EXPECT_EQ(r.words().back() & ~util::low_mask(dim & 63), 0u);
      }
    }
  }
}

TEST(BinVecKernels, RotatedRoundTrips) {
  util::Xoshiro256 rng(0x0707);
  for (const std::size_t dim : {63, 64, 65, 10000}) {
    const auto v = hv::BinVec::random(dim, rng);
    for (const std::size_t raw : {std::size_t{1}, std::size_t{37},
                                  std::size_t{64}, dim - 1}) {
      const std::size_t amount = raw % dim;  // keep dim - amount in range
      const auto back = v.rotated(amount).rotated(dim - amount);
      EXPECT_EQ(hv::hamming(v, back), 0u)
          << "dim=" << dim << " amount=" << amount;
    }
  }
}

// ---- bit-sliced counter: fused bind+add and word-parallel threshold -----

TEST(BitSliceKernels, AddBoundEqualsAddOfBind) {
  util::Xoshiro256 rng(0xb17e);
  const std::size_t dim = 777;
  hv::BitSliceCounter fused(dim), plain(dim);
  for (int k = 0; k < 9; ++k) {
    const auto a = hv::BinVec::random(dim, rng);
    const auto b = hv::BinVec::random(dim, rng);
    fused.add_bound(a, b);
    plain.add(hv::bind(a, b));
  }
  for (std::size_t i = 0; i < dim; ++i) {
    ASSERT_EQ(fused.count(i), plain.count(i)) << "dim " << i;
  }
}

TEST(BitSliceKernels, ThresholdIntoMatchesThresholdMajority) {
  util::Xoshiro256 rng(0x7e57);
  const std::size_t dim = 300;
  const auto tie_break = hv::BinVec::random(dim, rng);
  for (const int adds : {1, 2, 5, 6, 31, 32}) {  // odd and even bundles
    hv::BitSliceCounter counter(dim);
    for (int k = 0; k < adds; ++k) counter.add(hv::BinVec::random(dim, rng));
    const auto expected = counter.threshold_majority(&tie_break);
    hv::BinVec out;
    counter.threshold_majority_into(out, &tie_break);
    EXPECT_EQ(out.dimension(), dim);
    EXPECT_EQ(hv::hamming(expected, out), 0u) << "adds=" << adds;
    // And without a tie-breaker (ties resolve to 0).
    const auto expected_plain = counter.threshold_majority(nullptr);
    counter.threshold_majority_into(out, nullptr);
    EXPECT_EQ(hv::hamming(expected_plain, out), 0u) << "adds=" << adds;
  }
}

TEST(BitSliceKernels, ResetAndResizeReuseStorage) {
  util::Xoshiro256 rng(0x2e5e);
  const std::size_t dim = 500;
  hv::BitSliceCounter counter(dim);
  for (int k = 0; k < 7; ++k) counter.add(hv::BinVec::random(dim, rng));
  const std::size_t planes = counter.plane_count();
  counter.reset();
  EXPECT_EQ(counter.added(), 0u);
  EXPECT_EQ(counter.plane_count(), planes);  // storage kept
  for (std::size_t i = 0; i < dim; ++i) ASSERT_EQ(counter.count(i), 0u);
  counter.resize(dim);  // same word width: still no reallocation
  EXPECT_EQ(counter.plane_count(), planes);
}

// ---- zero-allocation encode --------------------------------------------

TEST(EncodeKernels, EncodeIntoMatchesEncode) {
  hv::EncoderConfig config;
  config.dimension = 2048;
  const std::size_t features = 13;
  hv::RecordEncoder encoder(features, config);
  util::Xoshiro256 rng(0xfeed);
  hv::EncodeWorkspace ws;
  hv::BinVec out;
  for (int s = 0; s < 20; ++s) {
    std::vector<float> sample(features);
    for (auto& f : sample) {
      f = static_cast<float>(rng.uniform());
    }
    const auto expected = encoder.encode(sample);
    encoder.encode_into(sample, out, ws);
    EXPECT_EQ(out.dimension(), expected.dimension());
    EXPECT_EQ(hv::hamming(expected, out), 0u) << "sample " << s;
  }
}

TEST(EncodeKernels, WorkspaceCapacityStabilises) {
  hv::EncoderConfig config;
  config.dimension = 1024;
  const std::size_t features = 40;
  hv::RecordEncoder encoder(features, config);
  util::Xoshiro256 rng(0xcafe);
  hv::EncodeWorkspace ws;
  hv::BinVec out;
  std::vector<float> sample(features);
  for (auto& f : sample) f = static_cast<float>(rng.uniform());
  encoder.encode_into(sample, out, ws);
  const auto warm = ws.capacity_signature();
  for (int s = 0; s < 10; ++s) {
    for (auto& f : sample) f = static_cast<float>(rng.uniform());
    encoder.encode_into(sample, out, ws);
    EXPECT_EQ(ws.capacity_signature(), warm) << "encode " << s;
  }
}

// ---- model batch scoring ------------------------------------------------

model::HdcModel tiny_model(std::size_t dim, std::size_t classes,
                           unsigned precision, util::Xoshiro256& rng) {
  std::vector<hv::SignedAccumulator> accs;
  for (std::size_t c = 0; c < classes; ++c) {
    hv::SignedAccumulator acc(dim);
    for (int i = 0; i < 5; ++i) acc.add(hv::BinVec::random(dim, rng));
    accs.push_back(std::move(acc));
  }
  return model::HdcModel::from_accumulators(accs, precision);
}

TEST(ModelKernels, ScoresBatchBitIdenticalToScores) {
  util::Xoshiro256 rng(0x5c02e);
  for (const unsigned precision : {1u, 2u, 3u}) {
    const auto m = tiny_model(1000, 6, precision, rng);
    std::vector<hv::BinVec> queries;
    std::vector<const hv::BinVec*> ptrs;
    for (int i = 0; i < 11; ++i) {  // odd count: exercises block tails
      queries.push_back(hv::BinVec::random(1000, rng));
    }
    for (const auto& q : queries) ptrs.push_back(&q);
    model::ScoreWorkspace ws;
    m.scores_batch(ptrs, ws);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto expected = m.scores(queries[i]);
      for (std::size_t c = 0; c < m.num_classes(); ++c) {
        // Bit-identical doubles, not approximately equal.
        ASSERT_EQ(ws.scores[i * m.num_classes() + c], expected[c])
            << "precision=" << precision << " q=" << i << " c=" << c;
      }
    }
  }
}

TEST(ModelKernels, PredictBatchBitIdenticalToSerialPredict) {
  util::Xoshiro256 rng(0xba7c4);
  for (const unsigned precision : {1u, 2u}) {
    const auto m = tiny_model(513, 5, precision, rng);
    std::vector<hv::BinVec> queries;
    for (int i = 0; i < 70; ++i) {  // > 2 blocks of 32, with a tail
      queries.push_back(hv::BinVec::random(513, rng));
    }
    const auto batched = m.predict_batch(queries);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(batched[i], m.predict(queries[i])) << "q=" << i;
    }
  }
}

TEST(ModelKernels, ChunkScoresAllMatchesChunkScores) {
  util::Xoshiro256 rng(0xc4a2c);
  const auto m = tiny_model(997, 4, 1, rng);  // prime dim: ragged chunks
  const auto query = hv::BinVec::random(997, rng);
  const std::size_t chunks = 20;
  std::vector<double> all;
  m.chunk_scores_all(query, chunks, all);
  ASSERT_EQ(all.size(), chunks * m.num_classes());
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * 997 / chunks;
    const std::size_t end = (c + 1) * 997 / chunks;
    const auto expected = m.chunk_scores(query, begin, end);
    for (std::size_t k = 0; k < m.num_classes(); ++k) {
      ASSERT_EQ(all[c * m.num_classes() + k], expected[k])
          << "chunk=" << c << " class=" << k;
    }
  }
}

// ---- crossbar / cost-model cross-check ----------------------------------

TEST(PimKernels, HammingMatrixMatchesCrossbarSearch) {
  util::Xoshiro256 rng(0xc20);
  const std::size_t dim = 96;  // keep the functional simulator small
  const std::size_t classes = 4;
  pim::CrossbarHdcUnit unit(dim, classes);
  std::vector<hv::BinVec> stored;
  std::vector<const std::uint64_t*> planes;
  for (std::size_t c = 0; c < classes; ++c) {
    stored.push_back(hv::BinVec::random(dim, rng));
    unit.load_class(c, stored.back());
    planes.push_back(stored.back().words().data());
  }
  const auto query = hv::BinVec::random(dim, rng);
  const auto in_memory = unit.hamming_search(query);
  const std::uint64_t* qp = query.words().data();
  std::vector<std::uint32_t> simd(classes);
  kernels::hamming_matrix(&qp, 1, planes.data(), classes,
                          query.words().size(), simd.data());
  ASSERT_EQ(in_memory.size(), classes);
  for (std::size_t c = 0; c < classes; ++c) {
    EXPECT_EQ(in_memory[c], simd[c]) << "class " << c;
  }
}

TEST(PimKernels, SearchWordopsModelIsConsistent) {
  // The shared op-count formula prices exactly the distance-matrix work:
  // 3 word ops per (query, class) word, linear in the batch.
  EXPECT_DOUBLE_EQ(pim::hdc_search_wordops(10000, 26, 1),
                   26.0 * (10000.0 / 64.0) * 3.0);
  EXPECT_DOUBLE_EQ(pim::hdc_search_wordops(10000, 26, 8),
                   8.0 * pim::hdc_search_wordops(10000, 26, 1));
  // gpu_cost_hdc (similarity-only) must be priced from the same count.
  pim::HdcWorkloadSpec spec;
  spec.dimension = 10000;
  spec.classes = 26;
  spec.include_encoding = false;
  const auto cost = pim::gpu_cost_hdc(spec);
  const auto params = pim::GpuParams::gtx1080();
  const double compute_s =
      pim::hdc_search_wordops(spec.dimension, spec.classes) /
      params.wordop_per_s;
  const double mem_s = (26.0 * (10000.0 / 64.0) * 8.0) /
                       (params.dram_bandwidth_gb_s * 1.0e9);
  EXPECT_DOUBLE_EQ(cost.latency_us, std::max(compute_s, mem_s) * 1.0e6);
}

}  // namespace
}  // namespace robusthd
