// Tests for mem::PlaneArena and the arena scoring path.
//
// Covers the storage invariants the arena kernels rely on (64-byte base
// and per-row alignment, vector-multiple and set-de-aliased stride, L1/L2
// tile geometry), the hugepage request plumbing and its graceful
// fallback, BinVec round-trips through store/load, the arena kernels'
// bit-identity with the row-major matrix kernels on every available ISA
// (awkward dimensions, all-ones and random masks), and the model-level
// coherence contract: layout-toggled scoring, copy/move semantics,
// invalidation on mutable class access, and ranged republish after an
// in-place repair.
#include "robusthd/mem/plane_arena.hpp"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "robusthd/hv/binvec.hpp"
#include "robusthd/kernels/kernels.hpp"
#include "robusthd/model/hdc_model.hpp"
#include "robusthd/util/aligned.hpp"
#include "robusthd/util/bitops.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd {
namespace {

constexpr std::array<kernels::Isa, 3> kAllIsas = {
    kernels::Isa::kScalar, kernels::Isa::kAvx2, kernels::Isa::kAvx512};

mem::PlaneArena make_arena(std::size_t planes, std::size_t dim,
                           util::Xoshiro256& rng,
                           std::vector<hv::BinVec>& sources,
                           const mem::PlaneArenaConfig& config = {}) {
  mem::PlaneArena arena(planes, dim, config);
  sources.clear();
  for (std::size_t p = 0; p < planes; ++p) {
    sources.push_back(hv::BinVec::random(dim, rng));
    arena.store_plane(p, sources.back());
  }
  return arena;
}

// ---- storage invariants -------------------------------------------------

TEST(PlaneArenaTest, AlignmentAndStrideInvariants) {
  util::Xoshiro256 rng(1);
  for (const auto& [planes, dim] : std::vector<std::pair<std::size_t,
                                                         std::size_t>>{
           {1, 63}, {3, 64}, {7, 65}, {16, 10000}, {4, 32768}, {2, 131072}}) {
    std::vector<hv::BinVec> sources;
    const auto arena = make_arena(planes, dim, rng, sources);
    ASSERT_FALSE(arena.empty());
    EXPECT_EQ(arena.num_planes(), planes);
    EXPECT_EQ(arena.dimension(), dim);
    EXPECT_EQ(arena.words(), util::words_for_bits(dim));
    EXPECT_TRUE(util::is_cacheline_aligned(arena.data()));
    for (std::size_t p = 0; p < planes; ++p) {
      EXPECT_TRUE(util::is_cacheline_aligned(arena.plane(p)));
    }
    // Stride: whole 512-bit vectors, at least the payload...
    EXPECT_EQ(arena.stride_words() % 8, 0u);
    EXPECT_GE(arena.stride_words(), arena.words());
    // ...and never a page multiple: a 4096-byte-aligned stride maps the
    // same tile chunk of every plane onto one small group of L2 sets.
    EXPECT_NE(arena.stride_words() * sizeof(std::uint64_t) % 4096, 0u)
        << "stride " << arena.stride_words() << " words aliases L2 sets";
  }
}

TEST(PlaneArenaTest, PageMultipleStrideIsPadded) {
  // 32768 bits = 512 words = exactly 4 KiB: the natural stride is a page
  // multiple and must be padded by one vector.
  mem::PlaneArena arena(2, 32768);
  EXPECT_EQ(arena.words(), 512u);
  EXPECT_EQ(arena.stride_words(), 520u);
}

TEST(PlaneArenaTest, TileGeometry) {
  mem::PlaneArenaConfig config;
  config.l2_tile_bytes = 1u << 20;
  // 128 planes, 4096 words: the 1 MiB L2 budget would allow 1024-word
  // chunks, but the L1 cap (8-query group working set) holds them at 512.
  mem::PlaneArena arena(128, 262144, config);
  EXPECT_EQ(arena.tile_words(), 512u);
  EXPECT_EQ(arena.num_tiles(), 8u);

  // Many planes: the L2 budget divides below the cap.
  mem::PlaneArena narrow(1024, 262144, config);
  EXPECT_EQ(narrow.tile_words(), 128u);

  // Few words: a single tile covering the whole plane.
  mem::PlaneArena tiny(4, 1000, config);
  EXPECT_EQ(tiny.tile_words(), tiny.words());
  EXPECT_EQ(tiny.num_tiles(), 1u);

  // Tile width is always a whole number of vectors (or the whole plane).
  for (std::size_t planes : {3u, 77u, 500u}) {
    mem::PlaneArena a(planes, 100000, config);
    if (a.tile_words() < a.words()) {
      EXPECT_EQ(a.tile_words() % 8, 0u) << planes << " planes";
    }
  }
}

TEST(PlaneArenaTest, EmptyArena) {
  mem::PlaneArena arena;
  EXPECT_TRUE(arena.empty());
  EXPECT_EQ(arena.num_planes(), 0u);
  EXPECT_EQ(arena.bytes(), 0u);
  EXPECT_EQ(arena.data(), nullptr);
}

TEST(PlaneArenaTest, HugepageDisabledNeverBacked) {
  mem::PlaneArenaConfig config;
  config.hugepages = false;
  mem::PlaneArena arena(8, 100000, config);
  EXPECT_FALSE(arena.hugepage_backed());
  // Allocation works either way and is zero-filled.
  for (std::size_t w = 0; w < arena.words(); ++w) {
    ASSERT_EQ(arena.plane(3)[w], 0u);
  }
}

TEST(PlaneArenaTest, HugepageRequestIsBestEffort) {
  // With the request on, the flag reports whatever the kernel granted —
  // either way the arena must be usable and zeroed.
  mem::PlaneArenaConfig config;
  config.hugepages = true;
  mem::PlaneArena arena(4, 2 * 1024 * 1024);
  ASSERT_FALSE(arena.empty());
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t w = 0; w < arena.words(); w += 997) {
      ASSERT_EQ(arena.plane(p)[w], 0u);
    }
  }
}

// ---- round-trips --------------------------------------------------------

TEST(PlaneArenaTest, StoreLoadRoundTrip) {
  util::Xoshiro256 rng(2);
  for (std::size_t dim : {63u, 64u, 65u, 10000u}) {
    std::vector<hv::BinVec> sources;
    const auto arena = make_arena(5, dim, rng, sources);
    for (std::size_t p = 0; p < 5; ++p) {
      hv::BinVec out;
      arena.load_plane(p, out);
      EXPECT_EQ(out, sources[p]) << "dim " << dim << " plane " << p;
    }
  }
}

TEST(PlaneArenaTest, StoreWordsUpdatesOnlyRange) {
  util::Xoshiro256 rng(3);
  std::vector<hv::BinVec> sources;
  auto arena = make_arena(3, 10000, rng, sources);
  auto mutated = sources[1];
  for (std::size_t w = 40; w < 60; ++w) {
    mutated.mutable_words()[w] = ~sources[1].words()[w];
  }
  // Republish a range that covers the mutation but not the whole plane.
  arena.store_words(1, 40, 60, mutated.words().data());
  hv::BinVec out;
  arena.load_plane(1, out);
  EXPECT_EQ(out, mutated);
  // Neighbouring planes untouched.
  arena.load_plane(0, out);
  EXPECT_EQ(out, sources[0]);
  arena.load_plane(2, out);
  EXPECT_EQ(out, sources[2]);
}

// ---- kernel equivalence -------------------------------------------------

TEST(PlaneArenaTest, ArenaKernelMatchesRowMajorEveryIsa) {
  util::Xoshiro256 rng(4);
  for (std::size_t dim : {63u, 64u, 65u, 10000u}) {
    const std::size_t planes = 7;
    std::vector<hv::BinVec> sources;
    const auto arena = make_arena(planes, dim, rng, sources);

    std::vector<hv::BinVec> queries_store;
    std::vector<const std::uint64_t*> queries, rows;
    // 13 queries: exercises the 8-, 4-, and single-query group rims.
    for (std::size_t q = 0; q < 13; ++q) {
      queries_store.push_back(hv::BinVec::random(dim, rng));
    }
    for (const auto& q : queries_store) queries.push_back(q.words().data());
    for (const auto& s : sources) rows.push_back(s.words().data());

    for (const auto isa : kAllIsas) {
      const auto* ops = kernels::ops_for(isa);
      if (ops == nullptr) continue;
      std::vector<std::uint32_t> want(queries.size() * planes, 0xdead);
      std::vector<std::uint32_t> got(queries.size() * planes, 0xbeef);
      ops->hamming_matrix(queries.data(), queries.size(), rows.data(), planes,
                          arena.words(), want.data());
      ops->hamming_matrix_arena(queries.data(), queries.size(), arena.view(),
                                got.data());
      EXPECT_EQ(got, want) << kernels::isa_name(isa) << " dim " << dim;
    }
  }
}

TEST(PlaneArenaTest, MaskedArenaKernelMatchesRowMajorEveryIsa) {
  util::Xoshiro256 rng(5);
  for (std::size_t dim : {63u, 64u, 65u, 10000u}) {
    const std::size_t planes = 5;
    const std::size_t words = util::words_for_bits(dim);
    std::vector<hv::BinVec> sources;
    const auto arena = make_arena(planes, dim, rng, sources);

    std::vector<hv::BinVec> queries_store;
    std::vector<const std::uint64_t*> queries, rows;
    for (std::size_t q = 0; q < 9; ++q) {
      queries_store.push_back(hv::BinVec::random(dim, rng));
    }
    for (const auto& q : queries_store) queries.push_back(q.words().data());
    for (const auto& s : sources) rows.push_back(s.words().data());

    // All-ones (within the dimension) and a random quarantine-style mask.
    util::AlignedU64Vec all_ones(words, ~0ull);
    if (dim % 64 != 0) all_ones[words - 1] = util::low_mask(dim % 64);
    util::AlignedU64Vec random_mask(words);
    for (auto& w : random_mask) w = rng.next();
    random_mask[words - 1] &= all_ones[words - 1];

    for (const auto* mask : {&all_ones, &random_mask}) {
      for (const auto isa : kAllIsas) {
        const auto* ops = kernels::ops_for(isa);
        if (ops == nullptr) continue;
        std::vector<std::uint32_t> want(queries.size() * planes, 1);
        std::vector<std::uint32_t> got(queries.size() * planes, 2);
        ops->hamming_matrix_masked(queries.data(), queries.size(), rows.data(),
                                   planes, words, mask->data(), want.data());
        ops->hamming_matrix_arena_masked(queries.data(), queries.size(),
                                         arena.view(), mask->data(),
                                         got.data());
        EXPECT_EQ(got, want) << kernels::isa_name(isa) << " dim " << dim;
      }
    }
  }
}

// ---- copy/move ----------------------------------------------------------

TEST(PlaneArenaTest, CopyIsDeepAndPreservesGeometry) {
  util::Xoshiro256 rng(6);
  std::vector<hv::BinVec> sources;
  const auto arena = make_arena(4, 10000, rng, sources);

  mem::PlaneArena copy(arena);
  ASSERT_EQ(copy.num_planes(), arena.num_planes());
  EXPECT_EQ(copy.stride_words(), arena.stride_words());
  EXPECT_EQ(copy.tile_words(), arena.tile_words());
  EXPECT_NE(copy.data(), arena.data());
  hv::BinVec out;
  for (std::size_t p = 0; p < 4; ++p) {
    copy.load_plane(p, out);
    EXPECT_EQ(out, sources[p]);
  }

  // Same-geometry assignment reuses the allocation.
  std::vector<hv::BinVec> other_sources;
  const auto other = make_arena(4, 10000, rng, other_sources);
  const std::uint64_t* before = copy.data();
  copy = other;
  EXPECT_EQ(copy.data(), before);
  copy.load_plane(2, out);
  EXPECT_EQ(out, other_sources[2]);
}

TEST(PlaneArenaTest, MoveTransfersOwnership) {
  util::Xoshiro256 rng(7);
  std::vector<hv::BinVec> sources;
  auto arena = make_arena(2, 5000, rng, sources);
  const std::uint64_t* base = arena.data();

  mem::PlaneArena moved(std::move(arena));
  EXPECT_EQ(moved.data(), base);
  EXPECT_TRUE(arena.empty());  // NOLINT(bugprone-use-after-move)
  hv::BinVec out;
  moved.load_plane(1, out);
  EXPECT_EQ(out, sources[1]);
}

// ---- model coherence ----------------------------------------------------

class ScopedLayout {
 public:
  explicit ScopedLayout(model::ScoringLayout layout)
      : prev_(model::scoring_layout()) {
    model::set_scoring_layout(layout);
  }
  ~ScopedLayout() { model::set_scoring_layout(prev_); }

 private:
  model::ScoringLayout prev_;
};

model::HdcModel random_model(std::size_t classes, std::size_t dim,
                             unsigned precision_bits, util::Xoshiro256& rng) {
  std::vector<model::ClassVector> cvs;
  for (std::size_t c = 0; c < classes; ++c) {
    model::ClassVector cv;
    for (unsigned p = 0; p < precision_bits; ++p) {
      cv.planes.push_back(hv::BinVec::random(dim, rng));
    }
    cvs.push_back(std::move(cv));
  }
  return model::HdcModel::from_planes(std::move(cvs), precision_bits);
}

TEST(PlaneArenaModelTest, FactoriesEstablishTheArena) {
  util::Xoshiro256 rng(8);
  const auto m = random_model(6, 10000, 2, rng);
  EXPECT_TRUE(m.arena_valid());
  EXPECT_EQ(m.arena().num_planes(), 12u);
  EXPECT_EQ(m.arena().dimension(), 10000u);
}

TEST(PlaneArenaModelTest, LayoutsScoreBitIdentically) {
  util::Xoshiro256 rng(9);
  for (unsigned precision : {1u, 3u}) {
    const auto m = random_model(5, 10000, precision, rng);
    std::vector<hv::BinVec> queries;
    // 70 queries: crosses the arena block's 8/4/1 group rims.
    for (int q = 0; q < 70; ++q) {
      queries.push_back(hv::BinVec::random(10000, rng));
    }
    std::vector<const hv::BinVec*> ptrs;
    for (const auto& q : queries) ptrs.push_back(&q);

    model::ScoreWorkspace rowmajor_ws, arena_ws;
    std::vector<int> rowmajor_pred, arena_pred;
    {
      ScopedLayout layout(model::ScoringLayout::kRowMajor);
      m.scores_batch(ptrs, rowmajor_ws);
      rowmajor_pred = m.predict_batch(queries, 1);
    }
    {
      ScopedLayout layout(model::ScoringLayout::kArena);
      m.scores_batch(ptrs, arena_ws);
      arena_pred = m.predict_batch(queries, 1);
    }
    EXPECT_EQ(arena_ws.scores, rowmajor_ws.scores) << "precision " << precision;
    EXPECT_EQ(arena_pred, rowmajor_pred);
  }
}

TEST(PlaneArenaModelTest, MaskedLayoutsScoreBitIdentically) {
  util::Xoshiro256 rng(10);
  const auto m = random_model(4, 10000, 1, rng);
  const std::size_t words = util::words_for_bits(10000);
  std::vector<hv::BinVec> queries;
  for (int q = 0; q < 9; ++q) queries.push_back(hv::BinVec::random(10000, rng));
  std::vector<const hv::BinVec*> ptrs;
  for (const auto& q : queries) ptrs.push_back(&q);

  util::AlignedU64Vec mask(words, ~0ull);
  mask[words - 1] = util::low_mask(10000 % 64);
  // Quarantine a chunk in the middle.
  for (std::size_t w = 50; w < 80; ++w) mask[w] = 0;
  std::size_t kept = 0;
  for (const auto w : mask) kept += std::popcount(w);

  model::ScoreWorkspace rowmajor_ws, arena_ws;
  {
    ScopedLayout layout(model::ScoringLayout::kRowMajor);
    m.scores_batch_masked(ptrs, mask, kept, rowmajor_ws);
  }
  {
    ScopedLayout layout(model::ScoringLayout::kArena);
    m.scores_batch_masked(ptrs, mask, kept, arena_ws);
  }
  EXPECT_EQ(arena_ws.scores, rowmajor_ws.scores);
}

TEST(PlaneArenaModelTest, MutableAccessInvalidatesAndSyncRestores) {
  util::Xoshiro256 rng(11);
  auto m = random_model(3, 4000, 1, rng);
  ASSERT_TRUE(m.arena_valid());

  auto& cv = m.class_vector(1);
  EXPECT_FALSE(m.arena_valid());
  cv.planes[0].flip(123);

  // Stale mirror: scoring still works (row-major fallback) and matches a
  // freshly synced arena bit-for-bit.
  const auto query = hv::BinVec::random(4000, rng);
  const auto stale_scores = m.scores(query);
  m.sync_arena();
  ASSERT_TRUE(m.arena_valid());
  ScopedLayout layout(model::ScoringLayout::kArena);
  EXPECT_EQ(m.scores(query), stale_scores);
  EXPECT_EQ(m.plane_words(1, 0)[1], cv.planes[0].words()[1]);
}

TEST(PlaneArenaModelTest, RangedRepublishAfterRepair) {
  util::Xoshiro256 rng(12);
  auto m = random_model(3, 10000, 1, rng);
  ASSERT_TRUE(m.arena_valid());

  // In-place repair of bits [3200, 4800) of class 2, plane 0 — the
  // recovery engine's pattern: mutate via plane_for_repair, republish
  // exactly the touched range.
  auto& plane = m.plane_for_repair(2, 0);
  for (std::size_t bit = 3200; bit < 4800; ++bit) {
    if (rng.next() & 1) plane.flip(bit);
  }
  EXPECT_TRUE(m.arena_valid());  // not invalidated by design
  m.sync_arena_range(2, 0, 3200, 4800);

  // The arena row now matches the repaired plane everywhere.
  const auto arena_words = m.plane_words(2, 0);
  for (std::size_t w = 0; w < arena_words.size(); ++w) {
    ASSERT_EQ(arena_words[w], plane.words()[w]) << "word " << w;
  }

  // And both layouts agree on scores after the repair.
  const auto query = hv::BinVec::random(10000, rng);
  std::vector<double> rowmajor_scores, arena_scores;
  {
    ScopedLayout layout(model::ScoringLayout::kRowMajor);
    rowmajor_scores = m.scores(query);
  }
  {
    ScopedLayout layout(model::ScoringLayout::kArena);
    arena_scores = m.scores(query);
  }
  EXPECT_EQ(arena_scores, rowmajor_scores);
}

TEST(PlaneArenaModelTest, CopySyncsStaleMirror) {
  util::Xoshiro256 rng(13);
  auto m = random_model(3, 4000, 1, rng);
  m.class_vector(0).planes[0].flip(7);  // invalidate
  ASSERT_FALSE(m.arena_valid());

  // Copy-construction re-establishes the mirror (snapshot publication).
  const model::HdcModel copy(m);
  EXPECT_TRUE(copy.arena_valid());
  EXPECT_EQ(copy.plane_words(0, 0)[0], m.class_vector(0).planes[0].words()[0]);

  // Copy-assignment from a valid source stays valid.
  model::HdcModel assigned;
  assigned = copy;
  EXPECT_TRUE(assigned.arena_valid());

  // Ragged models stay arena-less and score row-major.
  std::vector<model::ClassVector> ragged(2);
  ragged[0].planes.push_back(hv::BinVec::random(1000, rng));
  ragged[0].planes.push_back(hv::BinVec::random(1000, rng));
  ragged[1].planes.push_back(hv::BinVec::random(1000, rng));
  auto ragged_model = model::HdcModel::from_planes(std::move(ragged), 2);
  EXPECT_FALSE(ragged_model.arena_valid());
}

}  // namespace
}  // namespace robusthd
