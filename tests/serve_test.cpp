// Tests for the serving runtime: queue semantics, ring semantics,
// deterministic correctness vs direct inference, drain-on-shutdown,
// multi-producer stress, and scrubber equivalence with the offline
// recovery engine. This binary is also the TSan gate for the repo's
// concurrency code (see .github/workflows/ci.yml).
#include "robusthd/serve/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "robusthd/core/serialize.hpp"
#include "robusthd/data/synthetic.hpp"
#include "robusthd/fault/injector.hpp"
#include "robusthd/hv/encoder.hpp"
#include "robusthd/model/recovery.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::serve {
namespace {

constexpr std::size_t kDim = 2000;
constexpr std::size_t kClasses = 5;

/// Same tight-cluster geometry recovery_test uses: queries agree with
/// their prototype on ~96% of dimensions.
struct World {
  std::vector<hv::BinVec> queries;
  std::vector<int> labels;
  model::HdcModel model;
};

World make_world(std::uint64_t seed, std::size_t queries_per_class = 30) {
  World w;
  util::Xoshiro256 rng(seed);
  std::vector<hv::BinVec> prototypes;
  std::vector<hv::BinVec> train;
  std::vector<int> train_labels;
  for (std::size_t c = 0; c < kClasses; ++c) {
    prototypes.push_back(hv::BinVec::random(kDim, rng));
  }
  auto noisy = [&](std::size_t c) {
    auto v = prototypes[c];
    for (std::size_t d = 0; d < kDim; ++d) {
      if (rng.bernoulli(0.04)) v.flip(d);
    }
    return v;
  };
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (int i = 0; i < 20; ++i) {
      train.push_back(noisy(c));
      train_labels.push_back(static_cast<int>(c));
    }
    for (std::size_t i = 0; i < queries_per_class; ++i) {
      w.queries.push_back(noisy(c));
      w.labels.push_back(static_cast<int>(c));
    }
  }
  w.model = model::HdcModel::train(train, train_labels, kClasses, {});
  return w;
}

// ---------------------------------------------------------------- queue --

TEST(RequestQueue, FifoAndBounds) {
  RequestQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(queue.try_push(v));
  }
  int overflow = 99;
  EXPECT_FALSE(queue.try_push(overflow));
  EXPECT_EQ(overflow, 99);  // untouched on failure
  EXPECT_EQ(queue.depth(), 4u);
  for (int i = 0; i < 4; ++i) {
    const auto v = queue.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(RequestQueue, CloseDrainsThenExhausts) {
  RequestQueue<int> queue(8);
  for (int i = 0; i < 3; ++i) {
    int v = i;
    ASSERT_TRUE(queue.try_push(v));
  }
  queue.close();
  int rejected = 7;
  EXPECT_FALSE(queue.try_push(rejected));
  // Accepted items drain in order...
  for (int i = 0; i < 3; ++i) {
    const auto v = queue.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  // ...then pop reports exhaustion instead of blocking.
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(RequestQueue, PopForTimesOut) {
  RequestQueue<int> queue(2);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.pop_for(std::chrono::milliseconds(20)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(15));
}

TEST(RequestQueue, BlockedProducerWakesOnPop) {
  RequestQueue<int> queue(1);
  int first = 1;
  ASSERT_TRUE(queue.try_push(first));
  std::thread producer([&] {
    int second = 2;
    EXPECT_TRUE(queue.push(std::move(second)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(queue.pop().value(), 1);
  producer.join();
  EXPECT_EQ(queue.pop().value(), 2);
}

// ----------------------------------------------------------------- ring --

TEST(TrustRing, FifoSingleThread) {
  util::Xoshiro256 rng(1);
  TrustRing ring(8);
  std::vector<hv::BinVec> sent;
  for (int i = 0; i < 8; ++i) {
    sent.push_back(hv::BinVec::random(64, rng));
    ASSERT_TRUE(ring.push(TrustedQuery{sent.back(), (i % 2) == 0}));
  }
  EXPECT_FALSE(ring.push(TrustedQuery{sent.front(), false}));  // full
  TrustedQuery out;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out.query, sent[static_cast<std::size_t>(i)]);
    EXPECT_EQ(out.suspect, (i % 2) == 0);  // the taint tag rides along
  }
  EXPECT_FALSE(ring.pop(out));  // empty
}

TEST(TrustRing, MultiProducerNoLossNoDuplication) {
  TrustRing ring(1024);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(p) + 100);
      for (int i = 0; i < kPerProducer; ++i) {
        // Encode (producer, index) in the first bits of the vector.
        hv::BinVec v(64);
        const auto id = static_cast<std::size_t>(p * kPerProducer + i);
        for (std::size_t b = 0; b < 32; ++b) v.set(b, (id >> b) & 1);
        while (!ring.push(TrustedQuery{v, false})) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<int> seen(kProducers * kPerProducer, 0);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    TrustedQuery out;
    int drained = 0;
    while (drained < kProducers * kPerProducer) {
      if (ring.pop(out)) {
        std::size_t id = 0;
        for (std::size_t b = 0; b < 32; ++b) {
          id |= static_cast<std::size_t>(out.query.get(b)) << b;
        }
        ++seen[id];
        ++drained;
      } else {
        std::this_thread::yield();
      }
    }
    done.store(true);
  });
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_TRUE(done.load());
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int n) { return n == 1; }));
}

// --------------------------------------------------------------- server --

TEST(Server, BitIdenticalToDirectInference) {
  auto world = make_world(21);
  const auto reference = world.model;  // the server takes ownership

  ServerConfig config;
  config.worker_threads = 1;
  config.enable_recovery = false;  // snapshots never change
  Server server(world.model, config);

  const auto responses = server.predict_all(world.queries);
  ASSERT_EQ(responses.size(), world.queries.size());
  for (std::size_t i = 0; i < world.queries.size(); ++i) {
    EXPECT_EQ(responses[i].predicted, reference.predict(world.queries[i]))
        << "query " << i;
    EXPECT_EQ(responses[i].model_version, 0u);
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, world.queries.size());
  EXPECT_EQ(stats.completed, world.queries.size());
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(Server, ManyWorkersStayBitIdentical) {
  auto world = make_world(22);
  const auto reference = world.model;
  const auto expected = reference.predict_batch(world.queries, 1);

  ServerConfig config;
  config.worker_threads = 4;
  config.max_batch = 8;
  config.enable_recovery = false;
  Server server(world.model, config);

  const auto responses = server.predict_all(world.queries);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].predicted, expected[i]) << "query " << i;
  }
}

TEST(Server, SubmitFeaturesEncodesServerSide) {
  // Train a model on server-side-encodable feature vectors and check the
  // feature path (worker encodes through its persistent workspace) gives
  // exactly the predictions of encode-then-submit.
  const std::size_t features = 8;
  hv::EncoderConfig enc_config;
  enc_config.dimension = 1500;
  auto encoder = std::make_shared<hv::RecordEncoder>(features, enc_config);

  util::Xoshiro256 rng(29);
  std::vector<std::vector<float>> samples;
  std::vector<hv::BinVec> encoded;
  std::vector<int> labels;
  for (int c = 0; c < 3; ++c) {
    std::vector<float> center(features);
    for (auto& f : center) f = static_cast<float>(rng.uniform());
    for (int i = 0; i < 25; ++i) {
      std::vector<float> s(features);
      for (std::size_t k = 0; k < features; ++k) {
        s[k] = std::clamp(
            center[k] + static_cast<float>(rng.uniform(-0.05, 0.05)), 0.0f,
            1.0f);
      }
      encoded.push_back(encoder->encode(s));
      samples.push_back(std::move(s));
      labels.push_back(c);
    }
  }
  auto model = model::HdcModel::train(encoded, labels, 3, {});
  const auto reference = model;

  ServerConfig config;
  config.worker_threads = 2;
  config.max_batch = 8;
  config.enable_recovery = false;
  config.encoder = encoder;
  Server server(std::move(model), config);

  std::vector<std::future<Response>> futures;
  for (const auto& s : samples) futures.push_back(server.submit_features(s));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(futures[i].get().predicted, reference.predict(encoded[i]))
        << "sample " << i;
  }
}

TEST(Server, SubmitFeaturesWithoutEncoderThrows) {
  auto world = make_world(24);
  ServerConfig config;
  config.worker_threads = 1;
  config.enable_recovery = false;
  Server server(world.model, config);
  EXPECT_THROW((void)server.submit_features({0.5f, 0.5f}), std::logic_error);
}

TEST(Server, ShutdownDrainsQueue) {
  auto world = make_world(23);
  ServerConfig config;
  config.worker_threads = 2;
  config.queue_capacity = 64;
  config.enable_recovery = false;
  Server server(world.model, config);

  std::vector<std::future<Response>> futures;
  for (const auto& q : world.queries) futures.push_back(server.submit(q));
  server.shutdown();  // must fulfil every accepted promise

  std::size_t answered = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    const auto response = f.get();  // throws if the promise was broken
    EXPECT_GE(response.predicted, 0);
    ++answered;
  }
  EXPECT_EQ(answered, world.queries.size());
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.queue_depth, 0u);

  // Post-shutdown submissions are rejected with a visible error.
  auto late = server.submit(world.queries[0]);
  EXPECT_THROW(late.get(), std::runtime_error);
}

TEST(Server, MultiProducerStressNoLostNoDuplicated) {
  auto world = make_world(24);
  const auto expected = world.model.predict_batch(world.queries, 1);

  ServerConfig config;
  config.worker_threads = 3;
  config.queue_capacity = 32;  // small: exercises producer backpressure
  config.max_batch = 4;
  config.enable_recovery = false;
  Server server(world.model, config);

  constexpr int kProducers = 4;
  constexpr int kRounds = 5;
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::pair<std::size_t, std::future<Response>>> futures;
        for (std::size_t i = static_cast<std::size_t>(p);
             i < world.queries.size(); i += kProducers) {
          futures.emplace_back(i, server.submit(world.queries[i]));
        }
        for (auto& [index, future] : futures) {
          const auto response = future.get();  // exactly one response each
          ++answered;
          if (response.predicted != expected[index]) ++mismatches;
        }
      }
    });
  }
  for (auto& t : producers) t.join();

  // ceil(queries / producers) per producer per round, summed exactly.
  std::uint64_t expected_total = 0;
  for (int p = 0; p < kProducers; ++p) {
    expected_total += kRounds * ((world.queries.size() -
                                  static_cast<std::size_t>(p) + kProducers -
                                  1) /
                                 kProducers);
  }
  EXPECT_EQ(answered.load(), expected_total);
  EXPECT_EQ(mismatches.load(), 0u);
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, stats.submitted);
}

// ------------------------------------------------------------- scrubber --

model::RecoveryConfig generous_recovery() {
  model::RecoveryConfig config;
  config.max_updates_per_chunk = 0;
  config.repair_balance_slack = 4;
  config.max_total_substitution_fraction = 0.5;
  return config;
}

TEST(Scrubber, ReproducesOfflineRecoveryEngine) {
  auto world = make_world(25);
  util::Xoshiro256 attack_rng(26);
  auto regions = world.model.memory_regions();
  fault::BitFlipInjector::inject(regions, 0.15,
                                 fault::AttackMode::kClustered, attack_rng);
  const auto attacked = world.model;

  // Offline reference: the paper's experiment loop.
  model::HdcModel offline_model = attacked;
  model::RecoveryEngine offline(offline_model, generous_recovery());
  constexpr int kEpochs = 6;
  for (int e = 0; e < kEpochs; ++e) {
    for (const auto& q : world.queries) offline.observe(q);
  }

  // Serve-side: same queries, same order, through the ring + thread.
  ModelSnapshot snapshot(attacked);
  ScrubberConfig config;
  config.recovery = generous_recovery();
  config.ring_capacity = 64;  // deliberately small: exercises full-ring
  Scrubber scrubber(snapshot, config);
  scrubber.start();
  for (int e = 0; e < kEpochs; ++e) {
    for (const auto& q : world.queries) {
      while (!scrubber.offer(q)) {
        std::this_thread::yield();  // retry: equivalence needs every query
      }
    }
  }
  scrubber.drain();
  scrubber.stop();

  // The background path is the offline engine, verbatim.
  EXPECT_EQ(scrubber.engine().total_updates(), offline.total_updates());
  EXPECT_EQ(scrubber.engine().total_substituted_bits(),
            offline.total_substituted_bits());
  for (std::size_t c = 0; c < kClasses; ++c) {
    EXPECT_EQ(scrubber.working_model().class_vector(c).planes[0],
              offline_model.class_vector(c).planes[0])
        << "class " << c;
  }
  EXPECT_GT(scrubber.counters().processed, 0u);

  // And the published snapshot is the repaired model.
  ASSERT_GT(snapshot.version(), 0u);
  const auto published = snapshot.acquire();
  for (std::size_t c = 0; c < kClasses; ++c) {
    EXPECT_EQ(published->class_vector(c).planes[0],
              offline_model.class_vector(c).planes[0]);
  }
}

TEST(Server, RepairsInjectedFaultsWhileServing) {
  auto world = make_world(27);
  const auto clean = world.model;

  ServerConfig config;
  config.worker_threads = 2;
  config.max_batch = 8;
  config.enable_recovery = true;
  config.scrubber.recovery = generous_recovery();
  Server server(world.model, config);

  // Damage the live model mid-service, then keep serving traffic so the
  // scrubber has trusted queries to heal from.
  server.inject_faults(0.15, fault::AttackMode::kClustered, 28);
  server.drain();
  const auto damaged = *server.current_model();

  for (int epoch = 0; epoch < 10; ++epoch) {
    (void)server.predict_all(world.queries);
  }
  server.drain();
  server.shutdown();

  const auto stats = server.stats();
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_GT(stats.trusted, 0u);
  EXPECT_GT(stats.scrub_processed, 0u);
  EXPECT_GT(stats.scrub_substituted_bits, 0u);
  EXPECT_GT(stats.snapshots_published, 1u);  // damage + at least one repair

  // Bit-level agreement with the clean trained planes improved.
  const auto healed = *server.current_model();
  double before = 0.0, after = 0.0;
  for (std::size_t c = 0; c < kClasses; ++c) {
    before += hv::similarity(damaged.class_vector(c).planes[0],
                             clean.class_vector(c).planes[0]);
    after += hv::similarity(healed.class_vector(c).planes[0],
                            clean.class_vector(c).planes[0]);
  }
  EXPECT_GT(after, before);
}

// --------------------------------------------------------------- reload --

/// Two-class model whose prediction identifies the plane contents: the
/// all-zero probe query scores 1.0 against the all-zero class vector and
/// 0.0 against the all-one one, so `predicted` tells us *exactly* which
/// model a response was scored on.
model::HdcModel two_plane_model(bool swapped) {
  hv::BinVec zeros(kDim);
  hv::BinVec ones(kDim);
  for (std::size_t i = 0; i < kDim; ++i) ones.set(i, true);
  std::vector<model::ClassVector> classes(2);
  classes[0].planes.push_back(swapped ? ones : zeros);
  classes[1].planes.push_back(swapped ? zeros : ones);
  return model::HdcModel::from_planes(std::move(classes), 1);
}

TEST(ModelSnapshot, TryPublishIsVersionConditional) {
  auto world = make_world(34);
  ModelSnapshot snapshot(world.model);
  const auto [initial, v0] = snapshot.acquire_versioned();
  EXPECT_EQ(v0, 0u);

  // A writer holding the current version may publish...
  EXPECT_TRUE(snapshot.try_publish(*initial, v0));
  EXPECT_EQ(snapshot.version(), 1u);
  // ...but a writer whose copy predates someone else's publish may not.
  EXPECT_FALSE(snapshot.try_publish(*initial, v0));
  EXPECT_EQ(snapshot.version(), 1u);
}

TEST(Server, ReloadNeverMixesModelsMidTraffic) {
  // The acceptance-criteria test: hot-swap the model while concurrent
  // producers hammer the server, and check from the responses alone that
  // every query was scored on exactly one of the two models — the one its
  // reported model_version names. A worker that mixed planes across the
  // swap would emit a (version, prediction) pair that contradicts this.
  ServerConfig config;
  config.worker_threads = 3;
  config.max_batch = 4;
  config.enable_recovery = false;
  Server server(two_plane_model(false), config);

  const hv::BinVec probe(kDim);  // all zeros

  // Phase 1: the old model answers 0.
  for (int i = 0; i < 20; ++i) {
    const auto r = server.submit(probe).get();
    EXPECT_EQ(r.predicted, 0);
    EXPECT_EQ(r.model_version, 0u);
  }

  // Phase 2: reload concurrently with live traffic.
  std::mutex mu;
  std::vector<Response> responses;
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 800; ++i) {
        auto r = server.submit(probe).get();
        std::lock_guard<std::mutex> lock(mu);
        responses.push_back(r);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const auto reload_version = server.reload(two_plane_model(true));
  EXPECT_GE(reload_version, 1u);
  for (auto& t : producers) t.join();

  // Phase 3: the new model answers 1.
  for (int i = 0; i < 20; ++i) {
    const auto r = server.submit(probe).get();
    EXPECT_EQ(r.predicted, 1);
    EXPECT_GE(r.model_version, reload_version);
  }
  server.shutdown();

  std::size_t old_plane = 0, new_plane = 0;
  for (const auto& r : responses) {
    if (r.model_version < reload_version) {
      ASSERT_EQ(r.predicted, 0) << "pre-reload version scored on new model";
      ++old_plane;
    } else {
      ASSERT_EQ(r.predicted, 1) << "post-reload version scored on old model";
      ++new_plane;
    }
  }
  EXPECT_EQ(old_plane + new_plane, responses.size());
  EXPECT_GT(new_plane, 0u);  // the swap landed while traffic was live
  EXPECT_EQ(server.stats().reloads, 1u);
}

TEST(Server, ReloadValidatesShape) {
  auto world = make_world(35);
  ServerConfig config;
  config.worker_threads = 1;
  config.enable_recovery = true;
  config.scrubber.recovery = generous_recovery();
  Server server(world.model, config);

  // Wrong dimension: in-flight scoring workspaces and the scrubber's
  // working copy are sized for kDim.
  util::Xoshiro256 rng(36);
  std::vector<hv::BinVec> train{hv::BinVec::random(512, rng),
                                hv::BinVec::random(512, rng)};
  std::vector<int> labels{0, 1};
  auto wrong_dim = model::HdcModel::train(train, labels, 2, {});
  EXPECT_THROW((void)server.reload(std::move(wrong_dim)),
               std::invalid_argument);

  // Multi-bit model while the recovery scrubber is live: substitution is
  // binary-only, so the reload must be refused up front.
  std::vector<hv::BinVec> train2{hv::BinVec::random(kDim, rng),
                                 hv::BinVec::random(kDim, rng)};
  model::HdcConfig multibit;
  multibit.precision_bits = 2;
  auto wrong_bits = model::HdcModel::train(train2, labels, 2, multibit);
  EXPECT_THROW((void)server.reload(std::move(wrong_bits)),
               std::invalid_argument);

  EXPECT_EQ(server.stats().reloads, 0u);  // neither attempt published
  server.shutdown();
}

TEST(Server, LoadModelChecksIntegrityAndCountsFailures) {
  const auto spec = data::scaled(data::dataset_by_name("PAMAP"), 200, 50);
  const auto split = data::make_synthetic(spec);
  core::HdcClassifierConfig train_config;
  train_config.encoder.dimension = 1500;
  auto clf = core::HdcClassifier::train(split.train, train_config);

  ServerConfig config;
  config.worker_threads = 1;
  config.enable_recovery = false;
  Server server(model::HdcModel(clf.model()), config);

  const std::string good_path = "/tmp/robusthd_reload_good.rhd";
  const std::string bad_path = "/tmp/robusthd_reload_bad.rhd";
  core::save_model(clf, good_path);

  auto corrupted = core::serialize(clf);
  corrupted[corrupted.size() - 1] ^= std::byte{0x01};  // one payload bit
  {
    std::ofstream out(bad_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(corrupted.data()),
              static_cast<std::streamsize>(corrupted.size()));
  }

  EXPECT_GE(server.load_model(good_path), 1u);
  EXPECT_THROW((void)server.load_model(bad_path), std::runtime_error);
  EXPECT_THROW((void)server.load_model("/nonexistent/model.rhd"),
               std::runtime_error);

  const auto stats = server.stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.integrity_failures, 2u);
  server.shutdown();
  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
}

TEST(Server, ScrubberResyncsAfterReload) {
  auto world = make_world(37);
  ServerConfig config;
  config.worker_threads = 2;
  config.enable_recovery = true;
  config.scrubber.recovery = generous_recovery();
  Server server(world.model, config);

  (void)server.predict_all(world.queries);
  server.drain();

  auto replacement = make_world(38);  // fresh same-shape model
  EXPECT_GE(server.reload(std::move(replacement.model)), 1u);

  // Traffic on the new model: the scrubber must notice the foreign
  // snapshot version and resynchronise its private working copy before
  // observing anything else.
  for (int epoch = 0; epoch < 3; ++epoch) {
    (void)server.predict_all(replacement.queries);
  }
  server.drain();
  server.shutdown();

  const auto stats = server.stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_GE(stats.scrub_resyncs, 1u);
}

TEST(Scrubber, CountsTrustDropsWhenRingFull) {
  auto world = make_world(39);
  ModelSnapshot snapshot(world.model);
  ScrubberConfig config;
  config.ring_capacity = 8;
  Scrubber scrubber(snapshot, config);  // never started: the ring fills up
  std::size_t accepted = 0, dropped = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    if (scrubber.offer(world.queries[i])) {
      ++accepted;
    } else {
      ++dropped;
    }
  }
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(dropped, 12u);
  EXPECT_EQ(scrubber.counters().trust_drops, dropped);
}

TEST(Batcher, FlushesPartialBatchWhenQueueClosesMidLinger) {
  RequestQueue<int> queue(16);
  // max_batch far above what we enqueue, with a linger long enough that a
  // dropped partial batch would show up as either lost items or a full
  // linger-length stall.
  Batcher<int> batcher(queue, 8, std::chrono::milliseconds(500));
  for (int v : {41, 42}) {
    int item = v;
    ASSERT_TRUE(queue.try_push(item));
  }
  std::thread closer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
  });
  std::vector<int> batch;
  const auto start = std::chrono::steady_clock::now();
  // The batch is underfull when close() lands mid-linger: next_batch must
  // return the partial batch immediately (flush, not drop).
  ASSERT_TRUE(batcher.next_batch(batch));
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(batch, (std::vector<int>{41, 42}));
  EXPECT_LT(waited, std::chrono::milliseconds(400));
  closer.join();
  // Closed and drained: the worker exit signal.
  EXPECT_FALSE(batcher.next_batch(batch));
  EXPECT_TRUE(batch.empty());
}

TEST(Server, ShutdownMidLingerAnswersEveryAcceptedRequest) {
  const auto world = make_world(0x11f1);
  ServerConfig config;
  config.worker_threads = 2;
  config.max_batch = 64;                             // never fills
  config.batch_linger = std::chrono::milliseconds(250);  // workers linger
  config.enable_recovery = false;
  Server server(world.model, config);
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < 6; ++i) {
    futures.push_back(server.submit(world.queries[i]));
  }
  // Shut down while the partial batch is (at most) mid-linger: every
  // accepted request must still get a real answer.
  server.shutdown();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto response = futures[i].get();
    EXPECT_EQ(response.predicted, world.labels[i]);
  }
}

TEST(Server, RecoveryRejectsMultibitModels) {
  util::Xoshiro256 rng(29);
  std::vector<hv::BinVec> train{hv::BinVec::random(256, rng),
                                hv::BinVec::random(256, rng)};
  std::vector<int> labels{0, 1};
  model::HdcConfig model_config;
  model_config.precision_bits = 2;
  auto model = model::HdcModel::train(train, labels, 2, model_config);
  ServerConfig config;
  config.enable_recovery = true;
  EXPECT_THROW(Server(std::move(model), config), std::invalid_argument);
}

}  // namespace
}  // namespace robusthd::serve
