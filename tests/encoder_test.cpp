// Tests for the record-based (ID-level) encoder.
#include "robusthd/hv/encoder.hpp"

#include <gtest/gtest.h>

#include "robusthd/util/rng.hpp"

namespace robusthd::hv {
namespace {

EncoderConfig small_config() {
  EncoderConfig config;
  config.dimension = 2048;
  config.levels = 16;
  return config;
}

TEST(RecordEncoder, Deterministic) {
  RecordEncoder enc(10, small_config());
  std::vector<float> x(10, 0.3f);
  EXPECT_EQ(enc.encode(x), enc.encode(x));
}

TEST(RecordEncoder, DifferentSeedsDifferentCodes) {
  auto config = small_config();
  RecordEncoder a(10, config);
  config.seed ^= 1;
  RecordEncoder b(10, config);
  std::vector<float> x(10, 0.3f);
  EXPECT_NEAR(similarity(a.encode(x), b.encode(x)), 0.5, 0.05);
}

TEST(RecordEncoder, SimilarInputsSimilarCodes) {
  RecordEncoder enc(50, small_config());
  util::Xoshiro256 rng(5);
  std::vector<float> x(50), y(50), z(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x[i] = static_cast<float>(rng.uniform());
    y[i] = x[i] + 0.01f;  // tiny perturbation
    z[i] = static_cast<float>(rng.uniform());  // unrelated
  }
  const auto hx = enc.encode(x);
  const double near_sim = similarity(hx, enc.encode(y));
  const double far_sim = similarity(hx, enc.encode(z));
  EXPECT_GT(near_sim, 0.9);
  EXPECT_GT(near_sim, far_sim + 0.05);
}

TEST(RecordEncoder, SingleFeatureChangeHasLocalEffect) {
  RecordEncoder enc(100, small_config());
  std::vector<float> x(100, 0.5f);
  auto y = x;
  y[42] = 1.0f;
  const double sim = similarity(enc.encode(x), enc.encode(y));
  EXPECT_GT(sim, 0.9);   // one of 100 features changed
  EXPECT_LT(sim, 1.0);   // but it does change the code
}

TEST(RecordEncoder, OutputIsBalanced) {
  RecordEncoder enc(30, small_config());
  util::Xoshiro256 rng(6);
  std::vector<float> x(30);
  for (auto& v : x) v = static_cast<float>(rng.uniform());
  const auto h = enc.encode(x);
  const auto ones = static_cast<double>(h.count_ones());
  EXPECT_NEAR(ones / 2048.0, 0.5, 0.05);
}

TEST(RecordEncoder, EncodeAllMatchesEncode) {
  RecordEncoder enc(8, small_config());
  data::Dataset d;
  d.features = util::Matrix(3, 8);
  util::Xoshiro256 rng(7);
  for (auto& v : d.features.flat()) v = static_cast<float>(rng.uniform());
  d.labels = {0, 1, 0};
  d.num_classes = 2;
  const auto all = enc.encode_all(d);
  ASSERT_EQ(all.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(all[i], enc.encode(d.sample(i)));
  }
}

class EncoderDims : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EncoderDims, DimensionPropagates) {
  EncoderConfig config;
  config.dimension = GetParam();
  config.levels = 8;
  RecordEncoder enc(5, config);
  EXPECT_EQ(enc.dimension(), GetParam());
  std::vector<float> x(5, 0.5f);
  EXPECT_EQ(enc.encode(x).dimension(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Dims, EncoderDims,
                         ::testing::Values(64, 100, 1000, 10000));

}  // namespace
}  // namespace robusthd::hv
