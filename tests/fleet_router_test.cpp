// Tests for the fleet's consistent-hash router: deterministic and
// balanced assignment, bounded redistribution when shards are added or
// fail, group-confined failover, and clean release on recovery. This
// binary also runs under TSan in CI (health flags are touched from
// multiple threads in the concurrency test).
#include "robusthd/fleet/router.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace robusthd::fleet {
namespace {

constexpr std::size_t kTenants = 20000;

std::vector<std::string> same_group(std::size_t n,
                                    const std::string& id = "m0") {
  return std::vector<std::string>(n, id);
}

std::vector<std::size_t> assignments(const Router& router) {
  std::vector<std::size_t> out(kTenants);
  for (std::uint64_t t = 0; t < kTenants; ++t) out[t] = router.route(t);
  return out;
}

TEST(FleetRouter, DeterministicAcrossInstances) {
  Router a(same_group(8));
  Router b(same_group(8));
  for (std::uint64_t t = 0; t < kTenants; ++t) {
    ASSERT_EQ(a.route(t), b.route(t)) << "tenant " << t;
  }
}

TEST(FleetRouter, HealthBlindRouteIgnoresHealth) {
  Router router(same_group(4));
  const auto before = assignments(router);
  router.set_healthy(2, false);
  EXPECT_EQ(assignments(router), before);
}

TEST(FleetRouter, ReasonablyBalanced) {
  Router router(same_group(8));
  std::map<std::size_t, std::size_t> load;
  for (std::uint64_t t = 0; t < kTenants; ++t) ++load[router.route(t)];
  ASSERT_EQ(load.size(), 8u) << "some shard received no tenants";
  for (const auto& [shard, count] : load) {
    const double share = static_cast<double>(count) / kTenants;
    EXPECT_GT(share, 0.04) << "shard " << shard;  // uniform = 0.125
    EXPECT_LT(share, 0.30) << "shard " << shard;
  }
}

TEST(FleetRouter, StableUnderShardGrowth) {
  Router small(same_group(8));
  Router grown(same_group(9));
  std::size_t moved = 0;
  for (std::uint64_t t = 0; t < kTenants; ++t) {
    const auto before = small.route(t);
    const auto after = grown.route(t);
    if (after != before) {
      ++moved;
      // Consistent hashing: a tenant either stays put or moves to the
      // NEW shard — never shuffles between survivors.
      EXPECT_EQ(after, 8u) << "tenant " << t;
    }
  }
  // Expected move fraction is 1/9 ≈ 0.11; allow generous slack for
  // ring-point variance but catch rehash-everything regressions.
  const double frac = static_cast<double>(moved) / kTenants;
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.30);
}

TEST(FleetRouter, FailoverIsBoundedAndConfinedToSurvivors) {
  Router router(same_group(4));
  const auto before = assignments(router);
  router.set_healthy(1, false);

  std::size_t redistributed = 0;
  for (std::uint64_t t = 0; t < kTenants; ++t) {
    const auto d = router.route_healthy(t);
    EXPECT_FALSE(d.all_unhealthy);
    if (before[t] != 1) {
      // Tenants of healthy shards are untouched — failure of one shard
      // must not reshuffle anyone else.
      EXPECT_EQ(d.shard, before[t]) << "tenant " << t;
      EXPECT_FALSE(d.failover);
    } else {
      EXPECT_NE(d.shard, 1u) << "tenant " << t;
      EXPECT_TRUE(d.failover);
      EXPECT_EQ(d.primary, 1u);
      ++redistributed;
    }
  }
  // Exactly the dead shard's tenants moved (its share of the ring).
  EXPECT_GT(redistributed, 0u);
  EXPECT_LT(static_cast<double>(redistributed) / kTenants, 0.5);
}

TEST(FleetRouter, FailedShardLoadSpreadsOverSurvivors) {
  Router router(same_group(8));
  router.set_healthy(3, false);
  std::map<std::size_t, std::size_t> inherited;
  for (std::uint64_t t = 0; t < kTenants; ++t) {
    const auto d = router.route_healthy(t);
    if (d.failover) ++inherited[d.shard];
  }
  // The dead shard's tenants should land on several survivors (virtual
  // nodes interleave arcs), not dogpile one.
  EXPECT_GE(inherited.size(), 3u);
}

TEST(FleetRouter, RecoveryReleasesToExactOriginalAssignment) {
  Router router(same_group(5));
  const auto before = assignments(router);
  router.set_healthy(0, false);
  router.set_healthy(3, false);
  router.set_healthy(0, true);
  router.set_healthy(3, true);
  for (std::uint64_t t = 0; t < kTenants; ++t) {
    const auto d = router.route_healthy(t);
    EXPECT_EQ(d.shard, before[t]) << "tenant " << t;
    EXPECT_FALSE(d.failover);
  }
}

TEST(FleetRouter, FailoverRespectsModelGroups) {
  // Shards 0,1 serve model A; shards 2,3 serve model B.
  Router router({"A", "A", "B", "B"});
  router.set_healthy(0, false);
  for (std::uint64_t t = 0; t < kTenants; ++t) {
    const auto d = router.route_healthy(t);
    if (d.primary == 0) {
      // A-tenants may only fail over to the other A shard — a B shard
      // would answer with a different model.
      EXPECT_EQ(d.shard, 1u) << "tenant " << t;
    }
  }
  // Whole group down: requests stay on the primary, flagged unrouteable
  // (the shard's own breaker sheds with `abstained`).
  router.set_healthy(1, false);
  bool saw_group_a = false;
  for (std::uint64_t t = 0; t < kTenants && !saw_group_a; ++t) {
    const auto d = router.route_healthy(t);
    if (d.primary == 0 || d.primary == 1) {
      saw_group_a = true;
      EXPECT_TRUE(d.all_unhealthy);
      EXPECT_EQ(d.shard, d.primary);
      EXPECT_FALSE(d.failover);
    }
  }
  EXPECT_TRUE(saw_group_a);
  // B-tenants are untouched by A's outage.
  for (std::uint64_t t = 0; t < 1000; ++t) {
    const auto d = router.route_healthy(t);
    if (d.primary >= 2) {
      EXPECT_FALSE(d.failover);
      EXPECT_FALSE(d.all_unhealthy);
    }
  }
}

TEST(FleetRouter, ConcurrentHealthFlapsAndRoutingAreRaceFree) {
  Router router(same_group(6));
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  for (int flapper = 0; flapper < 2; ++flapper) {
    threads.emplace_back([&router, &stop, flapper] {
      std::size_t shard = static_cast<std::size_t>(flapper);
      while (!stop.load(std::memory_order_relaxed)) {
        router.set_healthy(shard, false);
        router.set_healthy(shard, true);
        shard = (shard + 2) % 6;
      }
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&router, &stop] {
      std::uint64_t t = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto d = router.route_healthy(t++ % kTenants);
        EXPECT_LT(d.shard, 6u);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : threads) thread.join();
}

TEST(FleetRouter, RejectsDegenerateConfigs) {
  EXPECT_THROW(Router({}, {}), std::invalid_argument);
  RouterConfig zero;
  zero.virtual_nodes = 0;
  EXPECT_THROW(Router(same_group(2), zero), std::invalid_argument);
}

}  // namespace
}  // namespace robusthd::fleet
