// Tests for the dense matrix kernels behind the baseline trainers.
#include "robusthd/util/matrix.hpp"

#include <gtest/gtest.h>

#include "robusthd/util/rng.hpp"

namespace robusthd::util {
namespace {

Matrix fill_random(std::size_t r, std::size_t c, Xoshiro256& rng) {
  Matrix m(r, c);
  for (auto& v : m.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

/// Reference O(n^3) multiply for cross-checking the blocked kernels.
Matrix naive_mul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < a.cols(); ++p) acc += a(i, p) * b(p, j);
      out(i, j) = acc;
    }
  }
  return out;
}

void expect_equal(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a(i, j), b(i, j), 1e-4f) << "at " << i << "," << j;
    }
  }
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m(1, 2), 1.5f);
  m(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(m.row(0)[1], 7.0f);
}

TEST(Matrix, GemmMatchesNaive) {
  Xoshiro256 rng(1);
  const auto a = fill_random(7, 11, rng);
  const auto b = fill_random(11, 5, rng);
  Matrix out(7, 5);
  gemm(a, b, out);
  expect_equal(out, naive_mul(a, b));
}

TEST(Matrix, GemmBtMatchesNaive) {
  Xoshiro256 rng(2);
  const auto a = fill_random(6, 9, rng);
  const auto b = fill_random(4, 9, rng);  // will be transposed
  Matrix out(6, 4);
  gemm_bt(a, b, out);
  // naive a * b^T
  Matrix bt(9, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 9; ++j) bt(j, i) = b(i, j);
  }
  expect_equal(out, naive_mul(a, bt));
}

TEST(Matrix, GemmAtMatchesNaive) {
  Xoshiro256 rng(3);
  const auto a = fill_random(9, 6, rng);  // will be transposed
  const auto b = fill_random(9, 4, rng);
  Matrix out(6, 4);
  gemm_at(a, b, out);
  Matrix at(6, 9);
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 6; ++j) at(j, i) = a(i, j);
  }
  expect_equal(out, naive_mul(at, b));
}

TEST(Matrix, GemvWithBias) {
  Matrix w(2, 3);
  w(0, 0) = 1;
  w(0, 1) = 2;
  w(0, 2) = 3;
  w(1, 0) = -1;
  w(1, 1) = 0;
  w(1, 2) = 1;
  const float x[] = {1.0f, 2.0f, 3.0f};
  const float bias[] = {0.5f, -0.5f};
  float y[2];
  gemv(w, x, bias, y);
  EXPECT_FLOAT_EQ(y[0], 14.5f);
  EXPECT_FLOAT_EQ(y[1], 1.5f);
}

TEST(Matrix, GemvWithoutBias) {
  Matrix w(1, 2);
  w(0, 0) = 2;
  w(0, 1) = 3;
  const float x[] = {4.0f, 5.0f};
  float y[1];
  gemv(w, x, {}, y);
  EXPECT_FLOAT_EQ(y[0], 23.0f);
}

}  // namespace
}  // namespace robusthd::util
