// End-to-end integration tests: the full train -> attack -> recover
// pipeline on synthetic paper benchmarks, plus the HdcClassifier facade
// and cross-model comparisons.
#include <gtest/gtest.h>

#include "robusthd/robusthd.hpp"

namespace robusthd {
namespace {

data::Split har_split() {
  const auto spec = data::scaled(data::dataset_by_name("UCIHAR"), 800, 300);
  return data::make_synthetic(spec);
}

TEST(Integration, HdcClassifierEndToEnd) {
  const auto split = har_split();
  auto clf = core::HdcClassifier::train(split.train, {});
  EXPECT_GT(clf.evaluate(split.test), 0.85);
  EXPECT_EQ(clf.name(), "RobustHD");
  EXPECT_EQ(clf.model().num_classes(), 12u);
}

TEST(Integration, CloneSharesEncoderButNotModel) {
  const auto split = har_split();
  auto clf = core::HdcClassifier::train(split.train, {});
  auto copy = clf.clone();
  // Attack the copy; the original must be unaffected.
  util::Xoshiro256 rng(3);
  auto regions = copy->memory_regions();
  fault::BitFlipInjector::inject(regions, 0.4, fault::AttackMode::kRandom,
                                 rng);
  EXPECT_GT(clf.evaluate(split.test), copy->evaluate(split.test));
}

TEST(Integration, HdcIsFarMoreRobustThanBaselines) {
  // The paper's headline claim as a single regression test.
  const auto split = har_split();
  auto hdc = core::HdcClassifier::train(split.train, {});
  auto mlp = baseline::Mlp::train(split.train, {});
  const double hdc_clean = hdc.evaluate(split.test);
  const double mlp_clean = mlp.evaluate(split.test);

  util::RunningStats hdc_loss, mlp_loss;
  for (int r = 0; r < 3; ++r) {
    auto hv_victim = hdc.clone();
    auto mlp_victim = mlp.clone();
    util::Xoshiro256 rng(50 + r);
    auto hr = hv_victim->memory_regions();
    fault::BitFlipInjector::inject(hr, 0.10, fault::AttackMode::kTargeted,
                                   rng);
    auto mr = mlp_victim->memory_regions();
    fault::BitFlipInjector::inject(mr, 0.10, fault::AttackMode::kTargeted,
                                   rng);
    hdc_loss.add(util::quality_loss(hdc_clean,
                                    hv_victim->evaluate(split.test)));
    mlp_loss.add(util::quality_loss(mlp_clean,
                                    mlp_victim->evaluate(split.test)));
  }
  EXPECT_LT(hdc_loss.mean(), 0.03);
  EXPECT_GT(mlp_loss.mean(), 0.10);
}

TEST(Integration, RecoveryThroughFacade) {
  const auto split = har_split();
  auto clf = core::HdcClassifier::train(split.train, {});
  const auto queries = clf.encoder().encode_all(split.test);
  const double clean = clf.model().evaluate(queries, split.test.labels);

  util::Xoshiro256 rng(4);
  auto regions = clf.memory_regions();
  fault::BitFlipInjector::inject(regions, 0.15,
                                 fault::AttackMode::kClustered, rng);
  const double attacked = clf.model().evaluate(queries, split.test.labels);

  EXPECT_FALSE(clf.recovery_enabled());
  clf.enable_recovery({});
  EXPECT_TRUE(clf.recovery_enabled());
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (std::size_t i = 0; i < split.test.size(); ++i) {
      clf.predict_and_recover(split.test.sample(i));
    }
  }
  const double recovered = clf.model().evaluate(queries, split.test.labels);
  EXPECT_GE(recovered, attacked - 0.02);
  EXPECT_GE(recovered, clean - 0.03);
}

TEST(Integration, OnlineStreamDriverReportsTrace) {
  const auto split = har_split();
  auto clf = core::HdcClassifier::train(split.train, {});
  const auto queries = clf.encoder().encode_all(split.test);
  const double clean = clf.model().evaluate(queries, split.test.labels);

  util::Xoshiro256 rng(5);
  auto& model = clf.model();
  auto regions = model.memory_regions();
  fault::BitFlipInjector::inject(regions, 0.10,
                                 fault::AttackMode::kClustered, rng);

  model::RecoveryEngine engine(model, {});
  std::vector<hv::BinVec> stream;
  for (int e = 0; e < 4; ++e) {
    stream.insert(stream.end(), queries.begin(), queries.end());
  }
  model::StreamConfig config;
  config.eval_every = 150;
  const auto result = model::run_recovery_stream(
      model, engine, stream, nullptr, queries, split.test.labels, clean,
      config);
  EXPECT_GE(result.trace.size(), 3u);
  EXPECT_EQ(result.trace.front().queries_seen, 0u);
  EXPECT_GT(result.final_accuracy, 0.8);
  EXPECT_GT(result.trusted_queries, stream.size() / 4);
}

TEST(Integration, StreamAttackerWithRecoveryStaysServiceable) {
  const auto split = har_split();
  auto clf = core::HdcClassifier::train(split.train, {});
  const auto queries = clf.encoder().encode_all(split.test);
  const double clean = clf.model().evaluate(queries, split.test.labels);

  auto& model = clf.model();
  model::RecoveryEngine engine(model, {});
  fault::StreamAttacker attacker(0.06, 1200, 77);
  std::vector<hv::BinVec> stream;
  for (int e = 0; e < 4; ++e) {
    stream.insert(stream.end(), queries.begin(), queries.end());
  }
  const auto result = model::run_recovery_stream(
      model, engine, stream, &attacker, queries, split.test.labels, clean);
  EXPECT_GE(result.final_accuracy, clean - 0.05);
}

TEST(Integration, AllPaperDatasetsTrainAndPredict) {
  for (const auto& spec : data::paper_datasets()) {
    const auto scaled_spec = data::scaled(spec, 300, 60);
    const auto split = data::make_synthetic(scaled_spec);
    core::HdcClassifierConfig config;
    config.encoder.dimension = 2000;  // keep the sweep fast
    auto clf = core::HdcClassifier::train(split.train, config);
    EXPECT_GT(clf.evaluate(split.test), 0.6) << spec.name;
  }
}

}  // namespace
}  // namespace robusthd
