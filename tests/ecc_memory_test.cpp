// Tests for the functional SECDED(72,64) memory.
#include "robusthd/mem/ecc_memory.hpp"

#include <gtest/gtest.h>

#include "robusthd/fault/injector.hpp"
#include "robusthd/util/bitops.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::mem {
namespace {

TEST(Secded, CleanWordDecodesClean) {
  util::Xoshiro256 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::uint64_t data = rng.next();
    std::uint8_t check = secded_encode(data);
    const std::uint64_t original = data;
    EXPECT_EQ(secded_decode(data, check), EccOutcome::kClean);
    EXPECT_EQ(data, original);
  }
}

TEST(Secded, EverySingleDataBitFlipIsCorrected) {
  util::Xoshiro256 rng(2);
  const std::uint64_t original = rng.next();
  for (int bit = 0; bit < 64; ++bit) {
    std::uint64_t data = original ^ (1ULL << bit);
    std::uint8_t check = secded_encode(original);
    EXPECT_EQ(secded_decode(data, check), EccOutcome::kCorrected)
        << "bit " << bit;
    EXPECT_EQ(data, original) << "bit " << bit;
  }
}

TEST(Secded, EverySingleCheckBitFlipIsCorrected) {
  util::Xoshiro256 rng(3);
  const std::uint64_t original = rng.next();
  for (int bit = 0; bit < 8; ++bit) {
    std::uint64_t data = original;
    std::uint8_t check =
        secded_encode(original) ^ static_cast<std::uint8_t>(1u << bit);
    EXPECT_EQ(secded_decode(data, check), EccOutcome::kCorrected)
        << "check bit " << bit;
    EXPECT_EQ(data, original) << "check bit " << bit;
  }
}

TEST(Secded, DoubleBitFlipsAreDetectedNotMiscorrected) {
  util::Xoshiro256 rng(4);
  const std::uint64_t original = rng.next();
  int detected = 0, trials = 0;
  for (int a = 0; a < 64; a += 7) {
    for (int b = a + 1; b < 64; b += 11) {
      std::uint64_t data = original ^ (1ULL << a) ^ (1ULL << b);
      std::uint8_t check = secded_encode(original);
      ++trials;
      detected += (secded_decode(data, check) == EccOutcome::kUncorrectable);
    }
  }
  EXPECT_EQ(detected, trials);  // all double flips detected
}

TEST(EccMemory, RoundTripsPayload) {
  util::Xoshiro256 rng(5);
  std::vector<std::byte> payload(100);
  for (auto& b : payload) {
    b = static_cast<std::byte>(rng.below(256));
  }
  EccProtectedMemory memory(payload);
  EXPECT_EQ(memory.payload_size(), 100u);
  EXPECT_EQ(memory.word_count(), 13u);  // ceil(100/8)
  EXPECT_EQ(memory.overhead_bits(), 13u * 8);

  std::vector<std::byte> out(100);
  const auto report = memory.read_all(out);
  EXPECT_EQ(report.clean, 13u);
  EXPECT_EQ(report.corrected, 0u);
  EXPECT_EQ(out, payload);
}

TEST(EccMemory, CorrectsSparseUpsets) {
  util::Xoshiro256 rng(6);
  std::vector<std::byte> payload(400);
  for (auto& b : payload) b = static_cast<std::byte>(rng.below(256));
  EccProtectedMemory memory(payload);

  // One flip in a handful of distinct words.
  auto stored = memory.stored_data();
  for (const std::size_t word : {0u, 7u, 23u, 49u}) {
    util::flip_bit(stored, word * 64 + (word * 13) % 64);
  }
  std::vector<std::byte> out(400);
  const auto report = memory.read_all(out);
  EXPECT_EQ(report.corrected, 4u);
  EXPECT_EQ(report.uncorrectable, 0u);
  EXPECT_EQ(out, payload);  // fully repaired
}

TEST(EccMemory, PercentLevelBerOverwhelms) {
  // The Figure-4b story, end to end: at 4% raw BER most words have >=2
  // flips and SECDED cannot reconstruct the payload.
  util::Xoshiro256 rng(7);
  std::vector<std::byte> payload(4096);
  for (auto& b : payload) b = static_cast<std::byte>(rng.below(256));
  EccProtectedMemory memory(payload);

  std::vector<fault::MemoryRegion> regions{
      {memory.stored_data(), 1, "data"},
      {memory.stored_checks(), 1, "check"}};
  fault::BitFlipInjector::inject_bit_errors(regions, 0.04, rng);

  std::vector<std::byte> out(4096);
  const auto report = memory.read_all(out);
  EXPECT_GT(report.uncorrectable, memory.word_count() / 4);
  EXPECT_NE(out, payload);
  // Residual corruption in the recovered payload is still percent-level.
  std::size_t wrong_bits = 0;
  for (std::size_t i = 0; i < payload.size() * 8; ++i) {
    wrong_bits += util::get_bit(std::span<const std::byte>(out), i) !=
                  util::get_bit(std::span<const std::byte>(payload), i);
  }
  EXPECT_GT(static_cast<double>(wrong_bits) /
                static_cast<double>(payload.size() * 8),
            0.01);
}

}  // namespace
}  // namespace robusthd::mem
