// Tests for the adversarial input-space layer: the gradient-free attack
// generators (greedy bit-flip, genetic feature search), the TrustGate's
// three admission checks (margin floor, per-class fair share, canary
// agreement), the PoisonCampaign against a live server in shadow and
// enforce modes, sentinel quarantine of poisoning-induced drift, and the
// full concurrent stack (scrubber + sentinel + chaos + campaign) for the
// TSan gate.
#include "robusthd/adversary/attacks.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

#include "robusthd/adversary/poison.hpp"
#include "robusthd/hv/encoder.hpp"
#include "robusthd/model/confidence.hpp"
#include "robusthd/serve/server.hpp"
#include "robusthd/serve/trust_gate.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd {
namespace {

constexpr std::size_t kDim = 2000;
constexpr std::size_t kClasses = 5;
constexpr std::size_t kChunks = 20;

/// Same tight-cluster geometry the serve/resilience suites use: queries
/// agree with their prototype on ~96% of dimensions, clean accuracy ~1.0.
struct World {
  std::vector<hv::BinVec> queries;
  std::vector<int> labels;
  model::HdcModel model;
};

World make_world(std::uint64_t seed, std::size_t queries_per_class = 20) {
  World w;
  util::Xoshiro256 rng(seed);
  std::vector<hv::BinVec> prototypes;
  std::vector<hv::BinVec> train;
  std::vector<int> train_labels;
  for (std::size_t c = 0; c < kClasses; ++c) {
    prototypes.push_back(hv::BinVec::random(kDim, rng));
  }
  auto noisy = [&](std::size_t c) {
    auto v = prototypes[c];
    for (std::size_t d = 0; d < kDim; ++d) {
      if (rng.bernoulli(0.04)) v.flip(d);
    }
    return v;
  };
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (int i = 0; i < 20; ++i) {
      train.push_back(noisy(c));
      train_labels.push_back(static_cast<int>(c));
    }
    for (std::size_t i = 0; i < queries_per_class; ++i) {
      w.queries.push_back(noisy(c));
      w.labels.push_back(static_cast<int>(c));
    }
  }
  w.model = model::HdcModel::train(train, train_labels, kClasses, {});
  return w;
}

double accuracy(const model::HdcModel& model,
                const std::vector<hv::BinVec>& queries,
                const std::vector<int>& labels) {
  return model.evaluate(queries, labels);
}

// ------------------------------------------------------ bit-flip attack --

TEST(BitFlipAttack, FlipsPredictionWithinBudget) {
  const auto world = make_world(0xa1);
  const auto& query = world.queries.front();
  ASSERT_EQ(world.model.predict(query), world.labels.front());

  // Tight clusters put the winner ~0.46 similarity above the runner-up,
  // so flipping it takes ~margin * D / 2 leverage bits. 600 is enough
  // with slack; 16 is not even close.
  adversary::BitFlipConfig config;
  config.max_flips = 600;
  const auto result = adversary::greedy_bit_flip(world.model, query, config);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.original_prediction, world.labels.front());
  EXPECT_NE(result.final_prediction, result.original_prediction);
  EXPECT_LE(result.flips_used, config.max_flips);
  // The reported adversarial vector really is within the Hamming budget
  // and really does flip the model.
  EXPECT_LE(hv::hamming(query, result.adversarial), config.max_flips);
  EXPECT_EQ(world.model.predict(result.adversarial), result.final_prediction);

  adversary::BitFlipConfig tiny;
  tiny.max_flips = 16;
  const auto blocked = adversary::greedy_bit_flip(world.model, query, tiny);
  EXPECT_FALSE(blocked.success);
}

TEST(BitFlipAttack, TargetedLandsOnRequestedClass) {
  const auto world = make_world(0xa2);
  const auto& query = world.queries.front();
  const int origin = world.model.predict(query);
  const int target = (origin + 2) % static_cast<int>(kClasses);

  adversary::BitFlipConfig config;
  config.max_flips = 800;
  config.target = target;
  const auto result = adversary::greedy_bit_flip(world.model, query, config);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.hit_target);
  EXPECT_EQ(result.final_prediction, target);
}

TEST(BitFlipAttack, SuccessRateMonotoneInBudget) {
  const auto world = make_world(0xa3, 6);
  std::vector<hv::BinVec> sample(world.queries.begin(),
                                 world.queries.begin() + 10);
  const auto none = adversary::bit_flip_success(world.model, sample, 0, 0.88);
  const auto small =
      adversary::bit_flip_success(world.model, sample, 64, 0.88);
  const auto big = adversary::bit_flip_success(world.model, sample, 700, 0.88);
  EXPECT_EQ(none.any, 0.0);
  EXPECT_LE(small.any, big.any);
  EXPECT_GT(big.any, 0.9);
  // Abstention is a real (partial) defense: the confident success rate can
  // never exceed the raw one.
  EXPECT_LE(big.confident, big.any);
}

// ------------------------------------------------------- genetic attack --

TEST(GeneticAttack, FlipsPredictionThroughEncoder) {
  // Two feature-space clusters close enough that an epsilon-ball search
  // can cross the boundary: class 0 near 0.42, class 1 near 0.58.
  constexpr std::size_t kFeatures = 16;
  hv::EncoderConfig encoder_config;
  encoder_config.dimension = kDim;
  hv::RecordEncoder encoder(kFeatures, encoder_config);

  util::Xoshiro256 rng(0xb1);
  std::vector<hv::BinVec> train;
  std::vector<int> labels;
  auto sample = [&](double center) {
    std::vector<float> f(kFeatures);
    for (auto& v : f) {
      v = static_cast<float>(center + rng.uniform(-0.05, 0.05));
    }
    return f;
  };
  for (int i = 0; i < 40; ++i) {
    train.push_back(encoder.encode(sample(0.42)));
    labels.push_back(0);
    train.push_back(encoder.encode(sample(0.58)));
    labels.push_back(1);
  }
  const auto model = model::HdcModel::train(train, labels, 2, {});

  const auto victim = sample(0.42);
  ASSERT_EQ(model.predict(encoder.encode(victim)), 0);

  adversary::GeneticConfig config;
  config.epsilon = 0.20;
  config.population = 16;
  config.generations = 30;
  config.seed = 0xb2;
  const auto result =
      adversary::genetic_feature_attack(model, encoder, victim, config);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.original_prediction, 0);
  EXPECT_EQ(result.final_prediction, 1);
  EXPECT_LE(result.linf, config.epsilon + 1e-6);
  // The reported feature vector reproduces the flip end-to-end.
  EXPECT_EQ(model.predict(encoder.encode(result.adversarial)), 1);
}

// ----------------------------------------------------------- trust gate --

serve::TrustGateConfig gate_config(bool enforce) {
  serve::TrustGateConfig config;
  config.enabled = true;
  config.enforce = enforce;
  config.chunks = kChunks;
  return config;
}

TEST(TrustGate, AcceptsNaturalTraffic) {
  const auto world = make_world(0xc1);
  serve::TrustGate gate(gate_config(true), kClasses, kDim, world.queries,
                        world.labels);
  model::ConfidenceConfig confidence;
  for (std::size_t i = 0; i < world.queries.size(); ++i) {
    const auto scores = world.model.scores(world.queries[i]);
    const auto conf = model::assess(scores, confidence, kDim);
    const auto verdict =
        gate.check(world.queries[i], conf.predicted, conf.margin);
    EXPECT_TRUE(verdict.accept);
    EXPECT_FALSE(verdict.suspect);
  }
  const auto counters = gate.counters();
  EXPECT_EQ(counters.checked, world.queries.size());
  EXPECT_EQ(counters.poisoned_offers, 0u);
  EXPECT_EQ(counters.gate_rejects, 0u);
}

TEST(TrustGate, RejectsPoisonQueriesByCanaryAgreement) {
  const auto world = make_world(0xc2);
  serve::TrustGate gate(gate_config(true), kClasses, kDim, world.queries,
                        world.labels);

  adversary::PoisonConfig poison;
  poison.chunks = kChunks;
  adversary::PoisonCampaign campaign(world.model, poison);
  const auto wave = campaign.craft_wave();
  ASSERT_FALSE(wave.empty());

  model::ConfidenceConfig confidence;
  std::size_t rejected = 0;
  for (const auto& query : wave) {
    const auto scores = world.model.scores(query);
    const auto conf = model::assess(scores, confidence, kDim);
    // The poison query still reads as high-confidence, on-margin traffic —
    // that is the whole point of the attack...
    EXPECT_GT(conf.top_probability, 0.88);
    const auto verdict = gate.check(query, conf.predicted, conf.margin);
    // ...but its payload chunk sits at chance agreement with the class
    // centroid, which the gate flags and (enforcing) rejects.
    EXPECT_TRUE(verdict.suspect);
    if (!verdict.accept) ++rejected;
  }
  EXPECT_EQ(rejected, wave.size());
  const auto counters = gate.counters();
  EXPECT_EQ(counters.poisoned_offers, wave.size());
  EXPECT_EQ(counters.gate_rejects, wave.size());
}

TEST(TrustGate, RelativeGapCatchesLocalizedDisagreement) {
  // A payload chunk whose bits are merely *correlated* with the victim —
  // the real-dataset regime, where cross-class plane agreement sits near
  // 0.8 and the absolute chance-floor never fires. The relative criterion
  // flags the localized deficit against the query's own clean chunks.
  const auto world = make_world(0xc6);
  serve::TrustGate gate(gate_config(true), kClasses, kDim, world.queries,
                        world.labels);

  auto query = gate.centroid(0);
  ASSERT_FALSE(query.empty());
  const std::size_t begin = 7 * kDim / kChunks;
  const std::size_t end = 8 * kDim / kChunks;
  // Flip exactly 30% of the chunk: agreement 0.70, safely above the 0.6
  // absolute floor yet far below the clean chunks' 1.0.
  const std::size_t payload = (end - begin) * 3 / 10;
  for (std::size_t b = begin; b < begin + payload; ++b) query.flip(b);
  const auto conf = model::assess(world.model.scores(query), {}, kDim);
  ASSERT_EQ(conf.predicted, 0);

  const auto verdict = gate.check(query, conf.predicted, conf.margin);
  EXPECT_TRUE(verdict.suspect);
  EXPECT_FALSE(verdict.accept);

  // With the relative criterion disabled the same query sails through:
  // the absolute floor alone cannot see correlated payloads.
  auto lax_config = gate_config(true);
  lax_config.relative_gap = 0.0;
  serve::TrustGate lax(lax_config, kClasses, kDim, world.queries,
                       world.labels);
  const auto lax_verdict = lax.check(query, conf.predicted, conf.margin);
  EXPECT_FALSE(lax_verdict.suspect);
  EXPECT_TRUE(lax_verdict.accept);
}

TEST(TrustGate, ShadowModeObservesWithoutRejecting) {
  const auto world = make_world(0xc3);
  serve::TrustGate gate(gate_config(false), kClasses, kDim, world.queries,
                        world.labels);

  adversary::PoisonConfig poison;
  poison.chunks = kChunks;
  adversary::PoisonCampaign campaign(world.model, poison);
  const auto wave = campaign.craft_wave();

  model::ConfidenceConfig confidence;
  for (const auto& query : wave) {
    const auto scores = world.model.scores(query);
    const auto conf = model::assess(scores, confidence, kDim);
    const auto verdict = gate.check(query, conf.predicted, conf.margin);
    EXPECT_TRUE(verdict.accept);  // shadow mode admits everything
    EXPECT_TRUE(verdict.suspect); // ...but still tags it
  }
  const auto counters = gate.counters();
  EXPECT_EQ(counters.poisoned_offers, wave.size());
  EXPECT_EQ(counters.gate_rejects, 0u);
}

TEST(TrustGate, MarginFloorRejectsLowMarginQueries) {
  const auto world = make_world(0xc4);
  serve::TrustGate gate(gate_config(true), kClasses, kDim, world.queries,
                        world.labels);
  util::Xoshiro256 rng(7);
  // A random vector sits at ~0.5 similarity to every class: its margin is
  // pure noise, far under the 4-sigma floor.
  const auto junk = hv::BinVec::random(kDim, rng);
  const auto scores = world.model.scores(junk);
  const auto conf = model::assess(scores, {}, kDim);
  const auto verdict = gate.check(junk, conf.predicted, conf.margin);
  EXPECT_FALSE(verdict.accept);
  EXPECT_GT(gate.counters().margin_rejects, 0u);
}

// The satellite regression test: before the gate, a single hot class
// could monopolize the trust ring without bound. The fair-share window
// caps its admissions while leaving other classes admissible.
TEST(TrustGate, HotClassCannotMonopolizeAdmission) {
  const auto world = make_world(0xc5);
  auto config = gate_config(true);
  config.rate_window = 64;
  config.fair_share_factor = 1.0;
  config.min_class_share = 4;  // cap = max(4, 64/5) = 12 per window
  serve::TrustGate gate(config, kClasses, kDim, world.queries, world.labels);

  model::ConfidenceConfig confidence;
  auto offer = [&](const hv::BinVec& query) {
    const auto scores = world.model.scores(query);
    const auto conf = model::assess(scores, confidence, kDim);
    return gate.check(query, conf.predicted, conf.margin).accept;
  };

  // 100 offers of (noisy variants of) class 0 only.
  util::Xoshiro256 rng(0xc6);
  std::size_t hot_accepted = 0;
  for (int i = 0; i < 100; ++i) {
    auto query = world.queries[0];
    for (std::size_t d = 0; d < kDim; ++d) {
      if (rng.bernoulli(0.01)) query.flip(d);
    }
    if (offer(query)) ++hot_accepted;
  }
  EXPECT_LT(hot_accepted, 40u);  // well under the 100 a gateless ring takes
  EXPECT_GT(gate.counters().rate_rejects, 0u);

  // Other classes are still admissible right now — fairness, not a
  // global brake.
  std::size_t other_accepted = 0;
  for (std::size_t i = 0; i < world.queries.size(); ++i) {
    if (world.labels[i] == 0) continue;
    if (offer(world.queries[i])) ++other_accepted;
  }
  EXPECT_GT(other_accepted, 0u);
}

// -------------------------------------------------- poison vs the server --

serve::ServerConfig poisoned_server_config(const World& world, bool enforce) {
  serve::ServerConfig config;
  config.worker_threads = 2;
  config.scrubber.recovery.chunks = kChunks;
  config.scrubber.gate = gate_config(enforce);
  config.canaries = world.queries;
  config.canary_labels = world.labels;
  return config;
}

TEST(PoisonCampaign, ShadowModePoisonsRecoveryEngineAndSentinelCatchesIt) {
  const auto world = make_world(0xd1);
  const auto blessed = world.model;

  auto config = poisoned_server_config(world, /*enforce=*/false);
  config.sentinel.enabled = true;
  config.sentinel.period = std::chrono::milliseconds(0);  // manual rounds
  config.sentinel.chunks = kChunks;
  serve::Server server(world.model, config);

  // Warm the engine's per-class similarity stats (its absolute gate needs
  // ten observations per class before any repair can commit).
  (void)server.predict_all(world.queries);
  server.drain();

  adversary::PoisonConfig poison;
  poison.chunks = kChunks;
  poison.waves = 12;
  adversary::PoisonCampaign campaign(blessed, poison);
  const auto report = campaign.run(server);
  EXPECT_EQ(report.answered, report.sent);
  EXPECT_GT(report.trusted, 0u);

  server.drain();
  const auto stats = server.stats();
  // The gate saw the poison (shadow mode counts it)...
  EXPECT_GT(stats.poisoned_offers, 0u);
  EXPECT_EQ(stats.gate_rejects, 0u);
  // ...and without enforcement the engine substituted wrong bits on the
  // suspects' behalf: the self-healing loop was successfully attacked.
  EXPECT_GT(stats.suspect_substitutions, 0u);
  const auto wrong =
      adversary::PoisonCampaign::wrong_bits(blessed, *server.current_model());
  EXPECT_GT(wrong, 0u);

  // Poisoning-induced drift trips quarantine exactly like memory damage:
  // the sentinel measures the stored planes against its blessed reference,
  // and wrong-bit substitution moved them.
  auto* sentinel = server.sentinel();
  ASSERT_NE(sentinel, nullptr);
  sentinel->run_round();
  sentinel->run_round();  // bad_streak = 2
  EXPECT_GT(server.stats().quarantined_chunks, 0u);

  server.shutdown();
}

TEST(PoisonCampaign, EnforcedGateDefendsTheRecoveryEngine) {
  const auto world = make_world(0xd2);
  const auto blessed = world.model;
  const double clean_accuracy = accuracy(blessed, world.queries, world.labels);

  serve::Server server(world.model,
                       poisoned_server_config(world, /*enforce=*/true));
  (void)server.predict_all(world.queries);
  server.drain();

  adversary::PoisonConfig poison;
  poison.chunks = kChunks;
  poison.waves = 12;
  adversary::PoisonCampaign campaign(blessed, poison);
  (void)campaign.run(server);
  server.drain();

  const auto stats = server.stats();
  // The same campaign that poisons the shadow-mode server is stopped at
  // admission: every suspect is rejected before it reaches the ring, so
  // no suspect ever contributes a substitution.
  EXPECT_GT(stats.gate_rejects, 0u);
  EXPECT_EQ(stats.suspect_substitutions, 0u);
  const auto wrong =
      adversary::PoisonCampaign::wrong_bits(blessed, *server.current_model());
  EXPECT_EQ(wrong, 0u);

  // Live accuracy holds through (and after) the campaign.
  const double defended_accuracy =
      accuracy(*server.current_model(), world.queries, world.labels);
  EXPECT_GE(defended_accuracy, clean_accuracy - 0.01);

  server.shutdown();
}

// Full concurrent stack under attack — the TSan gate for this subsystem:
// scrubber (repairs), sentinel (rounds on its own thread), chaos agent
// (memory attacks through the scrub thread), natural traffic and a poison
// campaign all running at once.
TEST(AdversaryStress, CampaignAgainstFullResilienceStack) {
  const auto world = make_world(0xd3);
  const auto blessed = world.model;

  auto config = poisoned_server_config(world, /*enforce=*/true);
  config.sentinel.enabled = true;
  config.sentinel.period = std::chrono::milliseconds(5);
  config.sentinel.chunks = kChunks;
  config.chaos.enabled = true;
  config.chaos.rate = 0.02;
  config.chaos.steps_to_full = 50;
  config.chaos.period = std::chrono::microseconds(2000);
  serve::Server server(world.model, config);

  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)server.predict_all(world.queries);
    }
  });

  adversary::PoisonConfig poison;
  poison.chunks = kChunks;
  poison.waves = 6;
  adversary::PoisonCampaign campaign(blessed, poison);
  const auto report = campaign.run(server);
  EXPECT_EQ(report.answered, report.sent);

  stop.store(true, std::memory_order_release);
  traffic.join();
  server.drain();
  const auto stats = server.stats();
  EXPECT_EQ(stats.suspect_substitutions, 0u);  // gate enforced throughout
  server.shutdown();
}

}  // namespace
}  // namespace robusthd
