// Tests for the small utilities: table printing, CSV emission, timer, and
// the fault-campaign runner.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "robusthd/fault/campaign.hpp"
#include "robusthd/util/bitops.hpp"
#include "robusthd/util/csv.hpp"
#include "robusthd/util/table.hpp"
#include "robusthd/util/timer.hpp"

namespace robusthd {
namespace {

TEST(TextTable, AlignsColumns) {
  util::TextTable table({"name", "v"});
  table.add_row({"long-name", "1"}).add_row({"x", "22"});
  std::ostringstream os;
  table.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("| name      | v  |"), std::string::npos);
  EXPECT_NE(text.find("| long-name | 1  |"), std::string::npos);
  EXPECT_NE(text.find("| x         | 22 |"), std::string::npos);
}

TEST(TextTable, ToleratesShortRows) {
  util::TextTable table({"a", "b", "c"});
  table.add_row({"only-one"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Formatting, PctAndFixed) {
  EXPECT_EQ(util::pct(0.1234), "12.34%");
  EXPECT_EQ(util::pct(0.1234, 0), "12%");
  EXPECT_EQ(util::pct(1.0, 1), "100.0%");
  EXPECT_EQ(util::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(util::fixed(-1.5, 0), "-2");  // round-half-to-even via iostream
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/robusthd_csv_test.csv";
  {
    util::CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.row(1, "x");
    csv.row(2.5, "y,z");
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,x");
  std::getline(in, line);
  EXPECT_EQ(line, "2.5,y,z");
  std::remove(path.c_str());
}

TEST(CsvWriter, UnwritablePathIsSilentNoOp) {
  util::CsvWriter csv("/nonexistent-dir/impossible.csv", {"a"});
  EXPECT_FALSE(csv.ok());
  csv.row(1);  // must not crash
}

TEST(Timer, MeasuresElapsedTime) {
  util::Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.millis(), 15.0);
  timer.reset();
  EXPECT_LT(timer.millis(), 15.0);
}

TEST(Campaign, RunsRepetitionsAndAggregates) {
  // A fake "model": a byte buffer whose "accuracy" is the fraction of
  // zero bits — random flips lower it deterministically in expectation.
  struct Fake {
    std::vector<std::byte> bytes = std::vector<std::byte>(125, std::byte{0});
  };
  fault::CampaignConfig config;
  config.error_rate = 0.10;
  config.repetitions = 4;

  int victims_made = 0;
  const auto result = fault::run_campaign<Fake>(
      config, 1.0,
      [&] {
        ++victims_made;
        return Fake{};
      },
      [](Fake& fake) {
        return std::vector<fault::MemoryRegion>{
            {fake.bytes, 1, "fake"}};
      },
      [](const Fake& fake) {
        std::size_t zeros = 0;
        for (std::size_t i = 0; i < fake.bytes.size() * 8; ++i) {
          zeros += !util::get_bit(
              std::span<const std::byte>(fake.bytes), i);
        }
        return static_cast<double>(zeros) /
               static_cast<double>(fake.bytes.size() * 8);
      });

  EXPECT_EQ(victims_made, 4);
  EXPECT_EQ(result.faulty_accuracy.count(), 4u);
  EXPECT_NEAR(result.faulty_accuracy.mean(), 0.90, 1e-9);
  EXPECT_NEAR(result.mean_quality_loss(), 0.10, 1e-9);
}

}  // namespace
}  // namespace robusthd
