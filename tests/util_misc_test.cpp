// Tests for the small utilities: table printing, CSV emission, timer, and
// the fault-campaign runner.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "robusthd/fault/campaign.hpp"
#include "robusthd/util/bitops.hpp"
#include "robusthd/util/crc32c.hpp"
#include "robusthd/util/csv.hpp"
#include "robusthd/util/table.hpp"
#include "robusthd/util/timer.hpp"

namespace robusthd {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(Crc32c, KnownAnswerVectors) {
  // The standard CRC32C check value (RFC 3720 appendix et al.).
  EXPECT_EQ(util::crc32c(bytes_of("123456789")), 0xE3069283u);
  EXPECT_EQ(util::crc32c(bytes_of("")), 0u);
  // 32 zero bytes — iSCSI test vector.
  EXPECT_EQ(util::crc32c(std::vector<std::byte>(32, std::byte{0})),
            0x8A9136AAu);
  EXPECT_EQ(util::crc32c(std::vector<std::byte>(32, std::byte{0xFF})),
            0x62A8AB43u);
}

TEST(Crc32c, ComposesIncrementally) {
  const auto whole = bytes_of("detect-and-refuse, then detect-and-repair");
  const auto full = util::crc32c(whole);
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{13},
                          whole.size() - 1, whole.size()}) {
    const auto head = util::crc32c(std::span(whole).first(cut));
    EXPECT_EQ(util::crc32c(std::span(whole).subspan(cut), head), full)
        << "cut at " << cut;
  }
}

TEST(Crc32c, DetectsEverySingleBitFlip) {
  auto data = bytes_of("robusthd model payload");
  const auto clean = util::crc32c(data);
  for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
    EXPECT_NE(util::crc32c(data), clean) << "missed bit " << bit;
    data[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
  }
}

TEST(TextTable, AlignsColumns) {
  util::TextTable table({"name", "v"});
  table.add_row({"long-name", "1"}).add_row({"x", "22"});
  std::ostringstream os;
  table.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("| name      | v  |"), std::string::npos);
  EXPECT_NE(text.find("| long-name | 1  |"), std::string::npos);
  EXPECT_NE(text.find("| x         | 22 |"), std::string::npos);
}

TEST(TextTable, ToleratesShortRows) {
  util::TextTable table({"a", "b", "c"});
  table.add_row({"only-one"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Formatting, PctAndFixed) {
  EXPECT_EQ(util::pct(0.1234), "12.34%");
  EXPECT_EQ(util::pct(0.1234, 0), "12%");
  EXPECT_EQ(util::pct(1.0, 1), "100.0%");
  EXPECT_EQ(util::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(util::fixed(-1.5, 0), "-2");  // round-half-to-even via iostream
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/robusthd_csv_test.csv";
  {
    util::CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.row(1, "x");
    csv.row(2.5, "y,z");
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,x");
  std::getline(in, line);
  EXPECT_EQ(line, "2.5,y,z");
  std::remove(path.c_str());
}

TEST(CsvWriter, UnwritablePathIsSilentNoOp) {
  util::CsvWriter csv("/nonexistent-dir/impossible.csv", {"a"});
  EXPECT_FALSE(csv.ok());
  csv.row(1);  // must not crash
}

TEST(Timer, MeasuresElapsedTime) {
  util::Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.millis(), 15.0);
  timer.reset();
  EXPECT_LT(timer.millis(), 15.0);
}

TEST(Campaign, RunsRepetitionsAndAggregates) {
  // A fake "model": a byte buffer whose "accuracy" is the fraction of
  // zero bits — random flips lower it deterministically in expectation.
  struct Fake {
    std::vector<std::byte> bytes = std::vector<std::byte>(125, std::byte{0});
  };
  fault::CampaignConfig config;
  config.error_rate = 0.10;
  config.repetitions = 4;

  int victims_made = 0;
  const auto result = fault::run_campaign<Fake>(
      config, 1.0,
      [&] {
        ++victims_made;
        return Fake{};
      },
      [](Fake& fake) {
        return std::vector<fault::MemoryRegion>{
            {fake.bytes, 1, "fake"}};
      },
      [](const Fake& fake) {
        std::size_t zeros = 0;
        for (std::size_t i = 0; i < fake.bytes.size() * 8; ++i) {
          zeros += !util::get_bit(
              std::span<const std::byte>(fake.bytes), i);
        }
        return static_cast<double>(zeros) /
               static_cast<double>(fake.bytes.size() * 8);
      });

  EXPECT_EQ(victims_made, 4);
  EXPECT_EQ(result.faulty_accuracy.count(), 4u);
  EXPECT_NEAR(result.faulty_accuracy.mean(), 0.90, 1e-9);
  EXPECT_NEAR(result.mean_quality_loss(), 0.10, 1e-9);
}

}  // namespace
}  // namespace robusthd
