// NetChaos proxy tests: a clean proxy is transparent (predictions
// bit-identical through it), each fault knob produces its advertised
// failure mode, and — the property the whole wire layer exists for —
// no injected corruption ever surfaces as data: a flipped bit is
// always a detected protocol error, never a wrong answer. Runs under
// TSan in CI.
#include "robusthd/fleet/netchaos.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <utility>
#include <vector>

#include "robusthd/fleet/client.hpp"
#include "robusthd/fleet/fleet.hpp"
#include "robusthd/fleet/frontend.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::fleet {
namespace {

constexpr std::size_t kDim = 1500;
constexpr std::size_t kClasses = 4;

struct World {
  std::vector<hv::BinVec> queries;
  std::vector<int> labels;
  model::HdcModel model;
};

World make_world(std::uint64_t seed) {
  World w;
  util::Xoshiro256 rng(seed);
  std::vector<hv::BinVec> prototypes;
  std::vector<hv::BinVec> train;
  std::vector<int> train_labels;
  for (std::size_t c = 0; c < kClasses; ++c) {
    prototypes.push_back(hv::BinVec::random(kDim, rng));
  }
  auto noisy = [&](std::size_t c) {
    auto v = prototypes[c];
    for (std::size_t d = 0; d < kDim; ++d) {
      if (rng.bernoulli(0.04)) v.flip(d);
    }
    return v;
  };
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (int i = 0; i < 15; ++i) {
      train.push_back(noisy(c));
      train_labels.push_back(static_cast<int>(c));
    }
    for (int i = 0; i < 4; ++i) {
      w.queries.push_back(noisy(c));
      w.labels.push_back(static_cast<int>(c));
    }
  }
  w.model = model::HdcModel::train(train, train_labels, kClasses, {});
  return w;
}

Fleet make_fleet(const World& w, std::size_t shards) {
  std::vector<model::HdcModel> models;
  FleetConfig config;
  for (std::size_t i = 0; i < shards; ++i) {
    models.push_back(w.model);
    ShardConfig shard;
    shard.server.worker_threads = 2;
    shard.server.enable_recovery = false;
    config.shards.push_back(std::move(shard));
  }
  return Fleet(std::move(models), std::move(config));
}

std::vector<Endpoint> frontend_endpoints(const Frontend& frontend) {
  std::vector<Endpoint> out;
  for (const auto port : frontend.ports()) out.push_back({"127.0.0.1", port});
  return out;
}

TEST(NetChaos, CleanProxyIsTransparent) {
  const auto w = make_world(0x1001);
  auto fleet = make_fleet(w, 2);
  Frontend frontend(fleet);
  frontend.start();
  NetChaos chaos(frontend_endpoints(frontend));
  chaos.start();

  Client through({chaos.endpoints()}, {"default", "default"});
  Client direct(frontend_endpoints(frontend), {"default", "default"});
  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    const auto a = through.predict(i, w.queries[i]);
    const auto b = direct.predict(i, w.queries[i]);
    ASSERT_TRUE(a.ok) << a.error_message;
    ASSERT_TRUE(b.ok) << b.error_message;
    EXPECT_EQ(a.predicted, b.predicted) << "query " << i;
    EXPECT_EQ(a.confidence, b.confidence) << "query " << i;
    EXPECT_EQ(a.shard, b.shard) << "query " << i;
  }
  const auto counters = chaos.counters();
  EXPECT_GE(counters.connections, 1u);
  EXPECT_GT(counters.bytes_in, 0u);
  EXPECT_GT(counters.bytes_out, 0u);
  EXPECT_EQ(counters.bits_flipped, 0u);
  EXPECT_EQ(counters.resets_injected, 0u);

  chaos.stop();
  frontend.stop();
  fleet.shutdown();
}

TEST(NetChaos, InjectedDelayShowsUpInLatency) {
  const auto w = make_world(0x1002);
  auto fleet = make_fleet(w, 1);
  Frontend frontend(fleet);
  frontend.start();
  NetChaosConfig config;
  config.delay = std::chrono::milliseconds(30);
  NetChaos chaos(frontend_endpoints(frontend), std::move(config));
  chaos.start();

  Client client(chaos.endpoints(), {"default"});
  const auto t0 = std::chrono::steady_clock::now();
  const auto response = client.predict(0, w.queries[0]);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(response.ok) << response.error_message;
  // Request and response chunks are each held 30ms.
  EXPECT_GE(elapsed, std::chrono::milliseconds(30));
  EXPECT_GE(chaos.counters().chunks_delayed, 2u);

  chaos.stop();
  frontend.stop();
  fleet.shutdown();
}

TEST(NetChaos, EveryFlippedBitIsDetectedNeverServed) {
  const auto w = make_world(0x1003);
  auto fleet = make_fleet(w, 1);
  Frontend frontend(fleet);
  frontend.start();
  NetChaosConfig config;
  config.flip_rate = 1.0;  // one random bit flipped in every chunk
  NetChaos chaos(frontend_endpoints(frontend), std::move(config));
  chaos.start();

  ClientConfig client_config;
  client_config.retry.max_attempts = 1;
  client_config.retry.attempt_timeout = std::chrono::milliseconds(200);
  client_config.response_timeout = std::chrono::milliseconds(500);
  Client client(chaos.endpoints(), {"default"}, std::move(client_config));
  std::size_t ok = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    if (client.predict(i, w.queries[i % w.queries.size()]).ok) ++ok;
  }
  // A CRC32C catches every single-bit flip: zero corrupted frames may
  // parse, so zero answers of any kind come back.
  EXPECT_EQ(ok, 0u);
  EXPECT_GE(chaos.counters().bits_flipped, 8u);
  // The frontend saw the corruption as protocol errors (poisoned
  // connections), not as requests.
  EXPECT_GE(frontend.counters().protocol_errors, 1u);
  EXPECT_GE(client.counters().transport_errors, 1u);

  chaos.stop();
  frontend.stop();
  fleet.shutdown();
}

TEST(NetChaos, InjectedResetSurfacesAsTransportError) {
  const auto w = make_world(0x1004);
  auto fleet = make_fleet(w, 1);
  Frontend frontend(fleet);
  frontend.start();
  NetChaosConfig config;
  config.reset_rate = 1.0;
  NetChaos chaos(frontend_endpoints(frontend), std::move(config));
  chaos.start();

  ClientConfig client_config;
  client_config.retry.max_attempts = 2;
  client_config.retry.initial_backoff = std::chrono::milliseconds(1);
  client_config.retry.attempt_timeout = std::chrono::milliseconds(200);
  Client client(chaos.endpoints(), {"default"}, std::move(client_config));
  const auto response = client.predict(0, w.queries[0]);
  EXPECT_FALSE(response.ok);
  EXPECT_GE(chaos.counters().resets_injected, 1u);
  EXPECT_GE(client.counters().transport_errors, 1u);

  chaos.stop();
  frontend.stop();
  fleet.shutdown();
}

TEST(NetChaos, DroppedChunksTimeOutInsteadOfHanging) {
  const auto w = make_world(0x1005);
  auto fleet = make_fleet(w, 1);
  Frontend frontend(fleet);
  frontend.start();
  NetChaosConfig config;
  config.drop_rate = 1.0;  // the connection goes silently deaf
  NetChaos chaos(frontend_endpoints(frontend), std::move(config));
  chaos.start();

  ClientConfig client_config;
  client_config.retry.max_attempts = 1;
  client_config.retry.attempt_timeout = std::chrono::milliseconds(100);
  client_config.response_timeout = std::chrono::milliseconds(400);
  Client client(chaos.endpoints(), {"default"}, std::move(client_config));
  const auto t0 = std::chrono::steady_clock::now();
  const auto response = client.predict(0, w.queries[0]);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(response.ok);
  EXPECT_LT(elapsed, std::chrono::milliseconds(1000));
  EXPECT_GE(chaos.counters().chunks_dropped, 1u);

  chaos.stop();
  frontend.stop();
  fleet.shutdown();
}

TEST(NetChaos, BlackholedShardFailsOverToItsTwin) {
  const auto w = make_world(0x1006);
  auto fleet = make_fleet(w, 2);
  Frontend frontend(fleet);
  frontend.start();
  NetChaos chaos(frontend_endpoints(frontend));
  chaos.start();

  ClientConfig client_config;
  client_config.retry.attempt_timeout = std::chrono::milliseconds(100);
  client_config.retry.initial_backoff = std::chrono::milliseconds(1);
  client_config.response_timeout = std::chrono::milliseconds(2000);
  Client client(chaos.endpoints(), {"default", "default"},
                std::move(client_config));

  // Find a tenant whose primary is shard 0, then partition shard 0.
  Router reference({"default", "default"}, RouterConfig{});
  std::uint64_t victim = 0;
  while (reference.route(victim) != 0) ++victim;
  chaos.set_blackholed(0, true);

  const auto response = client.predict(victim, w.queries[0]);
  ASSERT_TRUE(response.ok) << response.error_message;
  EXPECT_EQ(response.shard, 1u);
  EXPECT_TRUE(response.failover);
  EXPECT_GE(response.attempts, 2u);
  EXPECT_GE(chaos.counters().blackholed_chunks, 1u);
  EXPECT_TRUE(chaos.blackholed(0));

  // Heal the partition: after the cooldown the primary serves again.
  chaos.set_blackholed(0, false);
  EXPECT_FALSE(chaos.blackholed(0));

  chaos.stop();
  frontend.stop();
  fleet.shutdown();
}

TEST(NetChaos, ThrottledByteTrickleStillReassembles) {
  const auto w = make_world(0x1007);
  auto fleet = make_fleet(w, 1);
  FrontendConfig fc;
  fc.read_deadline = std::chrono::milliseconds(5000);  // trickle is slow
  Frontend frontend(fleet, fc);
  frontend.start();
  NetChaosConfig config;
  config.throttle_bytes = 16;  // frames split at arbitrary boundaries
  NetChaos chaos(frontend_endpoints(frontend), std::move(config));
  chaos.start();

  ClientConfig client_config;
  client_config.response_timeout = std::chrono::milliseconds(10000);
  Client client(chaos.endpoints(), {"default"}, std::move(client_config));
  const auto response = client.predict(0, w.queries[0]);
  ASSERT_TRUE(response.ok) << response.error_message;
  EXPECT_GE(response.predicted, 0);
  EXPECT_GT(chaos.counters().throttled_writes, 0u);

  chaos.stop();
  frontend.stop();
  fleet.shutdown();
}

}  // namespace
}  // namespace robusthd::fleet
