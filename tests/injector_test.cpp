// Tests for the bit-flip fault injector and attack modes.
#include "robusthd/fault/injector.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "robusthd/util/bitops.hpp"

namespace robusthd::fault {
namespace {

std::size_t count_set_bits(std::span<const std::byte> bytes) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < bytes.size() * 8; ++i) {
    total += util::get_bit(bytes, i);
  }
  return total;
}

TEST(Injector, RandomFlipsExactBudget) {
  std::vector<std::byte> buffer(125, std::byte{0});
  MemoryRegion region{buffer, 8, "buf"};
  util::Xoshiro256 rng(1);
  const auto flipped = BitFlipInjector::flip_random_bits(region, 200, rng);
  EXPECT_EQ(flipped, 200u);
  EXPECT_EQ(count_set_bits(buffer), 200u);  // distinct positions
}

TEST(Injector, RandomFlipsClampToRegionSize) {
  std::vector<std::byte> buffer(2, std::byte{0});
  MemoryRegion region{buffer, 8, "buf"};
  util::Xoshiro256 rng(2);
  const auto flipped = BitFlipInjector::flip_random_bits(region, 1000, rng);
  EXPECT_EQ(flipped, 16u);
  EXPECT_EQ(count_set_bits(buffer), 16u);
}

TEST(Injector, TargetedHitsMsbTierFirst) {
  // 8 int8 values; budget 4 -> 4 of the sign bits must flip, nothing else.
  std::vector<std::byte> buffer(8, std::byte{0});
  MemoryRegion region{buffer, 8, "weights"};
  util::Xoshiro256 rng(3);
  BitFlipInjector::flip_targeted_bits(region, 4, rng);
  std::size_t sign_flips = 0;
  for (std::size_t v = 0; v < 8; ++v) {
    for (unsigned b = 0; b < 8; ++b) {
      if (util::get_bit(std::span<const std::byte>(buffer), v * 8 + b)) {
        EXPECT_EQ(b, 7u) << "non-MSB bit flipped";
        ++sign_flips;
      }
    }
  }
  EXPECT_EQ(sign_flips, 4u);
}

TEST(Injector, TargetedSpillsToNextTier) {
  // Budget 12 over 8 values: 8 MSBs + 4 bit-6 positions.
  std::vector<std::byte> buffer(8, std::byte{0});
  MemoryRegion region{buffer, 8, "weights"};
  util::Xoshiro256 rng(4);
  BitFlipInjector::flip_targeted_bits(region, 12, rng);
  std::size_t msb = 0, next = 0;
  for (std::size_t v = 0; v < 8; ++v) {
    msb += util::get_bit(std::span<const std::byte>(buffer), v * 8 + 7);
    next += util::get_bit(std::span<const std::byte>(buffer), v * 8 + 6);
  }
  EXPECT_EQ(msb, 8u);
  EXPECT_EQ(next, 4u);
}

TEST(Injector, TargetedOnBinaryRegionEqualsRandomBudget) {
  std::vector<std::byte> buffer(128, std::byte{0});
  MemoryRegion region{buffer, 1, "hv"};
  util::Xoshiro256 rng(5);
  const auto flipped = BitFlipInjector::flip_targeted_bits(region, 77, rng);
  EXPECT_EQ(flipped, 77u);
  EXPECT_EQ(count_set_bits(buffer), 77u);
}

TEST(Injector, TargetedSpendsExactBudgetAcrossWidths) {
  // Regression: when bit_count was not a multiple of value_bits the old
  // targeted path silently under-spent — tier sampling covered only the
  // whole values and the tail bits were unreachable. The budget must be
  // spent exactly for every width, including on the tail.
  constexpr std::size_t kBytes = 13;  // 104 bits
  constexpr std::size_t kBits = kBytes * 8;
  for (const unsigned width : {1u, 7u, 8u, 32u}) {
    // 104 % 7 = 6 tail bits, 104 % 32 = 8 tail bits.
    const std::size_t budgets[] = {1, width, kBits - 1, kBits, kBits + 5};
    for (const std::size_t budget : budgets) {
      std::vector<std::byte> buffer(kBytes, std::byte{0});
      MemoryRegion region{buffer, width, "w"};
      util::Xoshiro256 rng(31 * width + budget);
      const auto flipped =
          BitFlipInjector::flip_targeted_bits(region, budget, rng);
      const auto expected = std::min(budget, kBits);
      EXPECT_EQ(flipped, expected) << "width " << width << " budget "
                                   << budget;
      EXPECT_EQ(count_set_bits(buffer), expected)
          << "width " << width << " budget " << budget;
    }
  }
}

TEST(Injector, TargetedRegionSmallerThanOneValue) {
  // 24-bit region of 32-bit values: zero whole values, everything is
  // tail. The old code's tier loop never ran and the budget vanished.
  std::vector<std::byte> buffer(3, std::byte{0});
  MemoryRegion region{buffer, 32, "stub"};
  util::Xoshiro256 rng(42);
  EXPECT_EQ(BitFlipInjector::flip_targeted_bits(region, 24, rng), 24u);
  EXPECT_EQ(count_set_bits(buffer), 24u);
}

TEST(Injector, TargetedTailSpendsOnlyAfterAllTiers) {
  // 72 bits of 7-bit values: 10 whole values (70 bits) + 2 tail bits.
  // Budget 12 stays within the tiers — all 10 MSBs (bit 6 of each value)
  // plus two bit-5 positions — so the tail must remain untouched.
  std::vector<std::byte> buffer(9, std::byte{0});
  MemoryRegion region{buffer, 7, "weights"};
  util::Xoshiro256 rng(5);
  EXPECT_EQ(BitFlipInjector::flip_targeted_bits(region, 12, rng), 12u);
  const std::span<const std::byte> view(buffer);
  for (std::size_t v = 0; v < 10; ++v) {
    EXPECT_TRUE(util::get_bit(view, v * 7 + 6)) << "MSB of value " << v;
  }
  EXPECT_FALSE(util::get_bit(view, 70));
  EXPECT_FALSE(util::get_bit(view, 71));

  // Budget 71 exceeds the 70 tier bits: exactly one tail bit flips.
  std::vector<std::byte> full(9, std::byte{0});
  MemoryRegion full_region{full, 7, "weights"};
  EXPECT_EQ(BitFlipInjector::flip_targeted_bits(full_region, 71, rng), 71u);
  const std::span<const std::byte> full_view(full);
  EXPECT_EQ(static_cast<int>(util::get_bit(full_view, 70)) +
                static_cast<int>(util::get_bit(full_view, 71)),
            1);
}

TEST(Injector, ClusteredFlipsAreContiguous) {
  std::vector<std::byte> buffer(1000, std::byte{0});
  MemoryRegion region{buffer, 1, "hv"};
  util::Xoshiro256 rng(6);
  BitFlipInjector::flip_clustered_bits(region, 100, 0.05, rng);
  // All flips must land inside one 400-bit window (5% of 8000).
  std::size_t first = 8000, last = 0;
  for (std::size_t i = 0; i < 8000; ++i) {
    if (util::get_bit(std::span<const std::byte>(buffer), i)) {
      first = std::min(first, i);
      last = std::max(last, i);
    }
  }
  EXPECT_EQ(count_set_bits(buffer), 100u);
  EXPECT_LE(last - first, 400u);
}

TEST(Injector, InjectSplitsBudgetAcrossRegions) {
  std::vector<std::byte> big(100, std::byte{0});
  std::vector<std::byte> small(10, std::byte{0});
  std::vector<MemoryRegion> regions{{big, 8, "big"}, {small, 8, "small"}};
  util::Xoshiro256 rng(7);
  const auto report = BitFlipInjector::inject(regions, 0.10,
                                              AttackMode::kRandom, rng);
  EXPECT_EQ(report.total_bits, 880u);
  EXPECT_EQ(report.flipped, 88u);
  EXPECT_NEAR(report.rate(), 0.10, 1e-9);
  // Proportional: ~80 in big, ~8 in small.
  EXPECT_NEAR(static_cast<double>(count_set_bits(big)), 80.0, 1.0);
  EXPECT_NEAR(static_cast<double>(count_set_bits(small)), 8.0, 1.0);
}

TEST(Injector, InjectBitErrorsMatchesBer) {
  std::vector<std::byte> buffer(1250, std::byte{0});
  std::vector<MemoryRegion> regions{{buffer, 32, "floats"}};
  util::Xoshiro256 rng(8);
  const auto report =
      BitFlipInjector::inject_bit_errors(regions, 0.05, rng);
  EXPECT_EQ(report.flipped, 500u);
  EXPECT_EQ(count_set_bits(buffer), 500u);
}

TEST(Injector, ZeroRateIsNoOp) {
  std::vector<std::byte> buffer(64, std::byte{0});
  std::vector<MemoryRegion> regions{{buffer, 8, "w"}};
  util::Xoshiro256 rng(9);
  const auto report =
      BitFlipInjector::inject(regions, 0.0, AttackMode::kTargeted, rng);
  EXPECT_EQ(report.flipped, 0u);
  EXPECT_EQ(count_set_bits(buffer), 0u);
}

TEST(StreamAttacker, ReachesTotalRateGradually) {
  std::vector<std::byte> buffer(1250, std::byte{0});
  StreamAttacker attacker(0.08, 100, 10);
  std::size_t total = 0;
  for (int step = 0; step < 100; ++step) {
    std::vector<MemoryRegion> regions{{buffer, 1, "hv"}};
    total += attacker.step(regions).flipped;
  }
  // The *gross* budget is spent in full...
  EXPECT_NEAR(static_cast<double>(total), 0.08 * 10000, 2.0);
  EXPECT_EQ(attacker.gross_flips(), total);
  // ...but cumulative_rate() reports *net* corruption: positions drawn
  // twice flipped back, so the buffer (which started all-zero) holds
  // exactly the net-flipped bits.
  EXPECT_EQ(attacker.cumulative_rate(),
            static_cast<double>(count_set_bits(buffer)) / 10000.0);
  EXPECT_LE(attacker.cumulative_rate(), 0.08);
  // E[net] = (N/2)(1 - (1 - 2/N)^gross) ~= 740 of 800 gross flips here.
  EXPECT_NEAR(attacker.cumulative_rate(), 0.074, 0.004);
  // Further steps are no-ops.
  std::vector<MemoryRegion> regions{{buffer, 1, "hv"}};
  EXPECT_EQ(attacker.step(regions).flipped, 0u);
}

TEST(StreamAttacker, CumulativeRateIsNetNotGross) {
  // Small surface + large budget forces many positions to be drawn more
  // than once; the old accounting summed gross flips and over-reported
  // the damage (it could even exceed 1.0).
  std::vector<std::byte> buffer(125, std::byte{0});  // 1000 bits
  StreamAttacker attacker(0.8, 20, 3);
  for (int step = 0; step < 20; ++step) {
    std::vector<MemoryRegion> regions{{buffer, 1, "hv"}};
    attacker.step(regions);
  }
  EXPECT_EQ(attacker.gross_flips(), 800u);
  const auto net = count_set_bits(buffer);
  EXPECT_LT(net, 800u);  // duplicates are statistically certain here
  EXPECT_EQ(attacker.cumulative_rate(),
            static_cast<double>(net) / 1000.0);
}

TEST(StreamAttacker, SpreadsOverRegions) {
  std::vector<std::byte> a(125, std::byte{0});
  std::vector<std::byte> b(125, std::byte{0});
  StreamAttacker attacker(0.2, 10, 11);
  for (int step = 0; step < 10; ++step) {
    std::vector<MemoryRegion> regions{{a, 1, "a"}, {b, 1, "b"}};
    attacker.step(regions);
  }
  // ~200 flips each side (binomial, generous bounds).
  EXPECT_GT(count_set_bits(a), 120u);
  EXPECT_GT(count_set_bits(b), 120u);
}

}  // namespace
}  // namespace robusthd::fault
