// Tests for the deterministic parallel helpers (free parallel_for and the
// persistent ThreadPool).
#include "robusthd/util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <vector>

#include "robusthd/data/synthetic.hpp"
#include "robusthd/hv/encoder.hpp"
#include "robusthd/util/thread_pool.hpp"

namespace robusthd::util {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(n, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, ZeroAndSmallSizes) {
  parallel_for(0, [](std::size_t) { FAIL(); });
  int calls = 0;
  parallel_for(3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 3);
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  const std::size_t n = 5000;
  std::vector<double> serial(n), parallel1(n), parallel8(n);
  auto fill = [](std::vector<double>& out) {
    return [&out](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5 + 1.0;
    };
  };
  parallel_for(n, fill(serial), 1);
  parallel_for(n, fill(parallel1), 2);
  parallel_for(n, fill(parallel8), 8);
  EXPECT_EQ(serial, parallel1);
  EXPECT_EQ(serial, parallel8);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(1000,
                   [](std::size_t i) {
                     if (i == 777) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, HardwareThreadsAtLeastOne) {
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(ParallelFor, TemplatedOverloadAvoidsTypeErasure) {
  // A move-only callable can't form a std::function: compiling at all
  // proves the call resolved to the template overload.
  auto counter = std::make_unique<std::atomic<int>>(0);
  parallel_for(100, [c = counter.get()](std::size_t) { ++*c; });
  EXPECT_EQ(counter->load(), 100);

  // An std::function lvalue still takes the original erased overload.
  std::function<void(std::size_t)> erased = [&](std::size_t) { ++*counter; };
  parallel_for(50, erased);
  EXPECT_EQ(counter->load(), 150);
}

TEST(ThreadPool, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  pool.parallel_for(n, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ReusableAcrossSections) {
  ThreadPool pool(3);
  std::vector<double> a(4000), b(4000);
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(a.size(), [&](std::size_t i) {
      a[i] = static_cast<double>(i) + round;
    });
    pool.parallel_for(b.size(), [&](std::size_t i) { b[i] = a[i] * 2.0; });
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(b[i], (static_cast<double>(i) + 4) * 2.0) << i;
  }
}

TEST(ThreadPool, MatchesFreeParallelForPartition) {
  // Same static chunking as the free function: identical writes, so the
  // results are bit-identical regardless of which executor runs them.
  const std::size_t n = 5000;
  std::vector<double> from_free(n), from_pool(n);
  parallel_for(n, [&](std::size_t i) {
    from_free[i] = static_cast<double>(i) * 0.75;
  });
  ThreadPool pool(4);
  pool.parallel_for(n, [&](std::size_t i) {
    from_pool[i] = static_cast<double>(i) * 0.75;
  });
  EXPECT_EQ(from_free, from_pool);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1000,
                                 [](std::size_t i) {
                                   if (i == 777) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a throwing section.
  std::atomic<int> calls{0};
  pool.parallel_for(100, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 100);
}

TEST(ThreadPool, ZeroTasksAndSingleWorker) {
  ThreadPool pool(1);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  int calls = 0;
  pool.parallel_for(3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 3);
}

TEST(ParallelEncodeAll, MatchesSerialEncode) {
  const auto spec = data::scaled(data::dataset_by_name("PAMAP"), 200, 50);
  const auto split = data::make_synthetic(spec);
  hv::EncoderConfig config;
  config.dimension = 2000;
  hv::RecordEncoder encoder(split.train.feature_count(), config);
  const auto batch = encoder.encode_all(split.train);
  ASSERT_EQ(batch.size(), split.train.size());
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    ASSERT_EQ(batch[i], encoder.encode(split.train.sample(i))) << i;
  }
}

}  // namespace
}  // namespace robusthd::util
