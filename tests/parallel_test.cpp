// Tests for the deterministic parallel helper.
#include "robusthd/util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "robusthd/data/synthetic.hpp"
#include "robusthd/hv/encoder.hpp"

namespace robusthd::util {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(n, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, ZeroAndSmallSizes) {
  parallel_for(0, [](std::size_t) { FAIL(); });
  int calls = 0;
  parallel_for(3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 3);
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  const std::size_t n = 5000;
  std::vector<double> serial(n), parallel1(n), parallel8(n);
  auto fill = [](std::vector<double>& out) {
    return [&out](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5 + 1.0;
    };
  };
  parallel_for(n, fill(serial), 1);
  parallel_for(n, fill(parallel1), 2);
  parallel_for(n, fill(parallel8), 8);
  EXPECT_EQ(serial, parallel1);
  EXPECT_EQ(serial, parallel8);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(1000,
                   [](std::size_t i) {
                     if (i == 777) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, HardwareThreadsAtLeastOne) {
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(ParallelEncodeAll, MatchesSerialEncode) {
  const auto spec = data::scaled(data::dataset_by_name("PAMAP"), 200, 50);
  const auto split = data::make_synthetic(spec);
  hv::EncoderConfig config;
  config.dimension = 2000;
  hv::RecordEncoder encoder(split.train.feature_count(), config);
  const auto batch = encoder.encode_all(split.train);
  ASSERT_EQ(batch.size(), split.train.size());
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    ASSERT_EQ(batch[i], encoder.encode(split.train.sample(i))) << i;
  }
}

}  // namespace
}  // namespace robusthd::util
