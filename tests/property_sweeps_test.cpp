// Parameterised property sweeps across the library's core invariants —
// the behaviours that must hold for every dimension, rate and seed, not
// just the defaults the other suites exercise.
#include <gtest/gtest.h>

#include "robusthd/fault/injector.hpp"
#include "robusthd/hv/binvec.hpp"
#include "robusthd/hv/encoder.hpp"
#include "robusthd/model/hdc_model.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd {
namespace {

// ---------------------------------------------------------------- binding

class BindAlgebra
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(BindAlgebra, XorGroupProperties) {
  const auto [dim, seed] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 1000 + dim);
  const auto a = hv::BinVec::random(dim, rng);
  const auto b = hv::BinVec::random(dim, rng);
  const auto c = hv::BinVec::random(dim, rng);
  // Commutative, associative, self-inverse, identity.
  EXPECT_EQ(hv::bind(a, b), hv::bind(b, a));
  EXPECT_EQ(hv::bind(hv::bind(a, b), c), hv::bind(a, hv::bind(b, c)));
  EXPECT_EQ(hv::bind(a, a), hv::BinVec(dim));
  EXPECT_EQ(hv::bind(a, hv::BinVec(dim)), a);
}

TEST_P(BindAlgebra, BindingIsAnIsometry) {
  const auto [dim, seed] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 977 + dim);
  const auto a = hv::BinVec::random(dim, rng);
  const auto b = hv::BinVec::random(dim, rng);
  const auto key = hv::BinVec::random(dim, rng);
  EXPECT_EQ(hv::hamming(a, b),
            hv::hamming(hv::bind(a, key), hv::bind(b, key)));
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSeeds, BindAlgebra,
    ::testing::Combine(::testing::Values(64, 100, 1000, 10000),
                       ::testing::Values(1, 2, 3)));

// ------------------------------------------------------------- injection

class InjectionRates : public ::testing::TestWithParam<double> {};

TEST_P(InjectionRates, FlipCountTracksRateOnBinaryRegions) {
  const double rate = GetParam();
  std::vector<std::byte> buffer(1250, std::byte{0});
  std::vector<fault::MemoryRegion> regions{{buffer, 1, "hv"}};
  util::Xoshiro256 rng(static_cast<std::uint64_t>(rate * 1e4));
  const auto report =
      fault::BitFlipInjector::inject(regions, rate, fault::AttackMode::kRandom, rng);
  EXPECT_NEAR(report.rate(), rate, 1e-4);
  // Flips are distinct, so the number of set bits equals the flip count.
  std::size_t set = 0;
  for (std::size_t i = 0; i < buffer.size() * 8; ++i) {
    set += util::get_bit(std::span<const std::byte>(buffer), i);
  }
  EXPECT_EQ(set, report.flipped);
}

TEST_P(InjectionRates, DoubleInjectionPartiallyCancels) {
  // Injecting twice with the same rate r flips some bits back: expected
  // final flipped fraction is 2r(1-r) < 2r (sanity of independence).
  const double rate = GetParam();
  if (rate == 0.0) return;
  std::vector<std::byte> buffer(2500, std::byte{0});
  std::vector<fault::MemoryRegion> regions{{buffer, 1, "hv"}};
  util::Xoshiro256 rng(99);
  fault::BitFlipInjector::inject(regions, rate, fault::AttackMode::kRandom, rng);
  fault::BitFlipInjector::inject(regions, rate, fault::AttackMode::kRandom, rng);
  std::size_t set = 0;
  const std::size_t total = buffer.size() * 8;
  for (std::size_t i = 0; i < total; ++i) {
    set += util::get_bit(std::span<const std::byte>(buffer), i);
  }
  const double expected = 2.0 * rate * (1.0 - rate);
  EXPECT_NEAR(static_cast<double>(set) / static_cast<double>(total),
              expected, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Rates, InjectionRates,
                         ::testing::Values(0.0, 0.01, 0.05, 0.10, 0.20));

// ------------------------------------------------------- model invariants

class ModelDims : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ModelDims, FlipsDegradeSimilarityLinearly) {
  // Flipping fraction r of a stored vector moves similarity toward 0.5 by
  // the exact factor (1 - 2r) in expectation — the multiplicative margin
  // shrink DESIGN.md relies on.
  const std::size_t dim = GetParam();
  util::Xoshiro256 rng(dim);
  const auto query = hv::BinVec::random(dim, rng);
  auto stored = query;  // similarity 1.0
  const double rate = 0.1;
  auto words = stored.mutable_words();
  fault::MemoryRegion region{std::as_writable_bytes(words), 1, "hv"};
  fault::BitFlipInjector::flip_random_bits(
      region, static_cast<std::size_t>(rate * dim), rng);
  stored.mask_tail();
  // Expected similarity: 1 - r, sd ~ sqrt(r(1-r)/D) (tail flips excluded
  // by masking, so allow a small extra tolerance).
  EXPECT_NEAR(hv::similarity(query, stored), 1.0 - rate,
              4.0 / std::sqrt(static_cast<double>(dim)) + 0.01);
}

TEST_P(ModelDims, TrainedModelBeatsChance) {
  const std::size_t dim = GetParam();
  util::Xoshiro256 rng(dim * 3 + 1);
  std::vector<hv::BinVec> prototypes;
  std::vector<hv::BinVec> samples;
  std::vector<int> labels;
  const std::size_t classes = 4;
  for (std::size_t c = 0; c < classes; ++c) {
    prototypes.push_back(hv::BinVec::random(dim, rng));
  }
  for (std::size_t c = 0; c < classes; ++c) {
    for (int i = 0; i < 10; ++i) {
      auto v = prototypes[c];
      for (std::size_t d = 0; d < dim; ++d) {
        if (rng.bernoulli(0.2)) v.flip(d);
      }
      samples.push_back(std::move(v));
      labels.push_back(static_cast<int>(c));
    }
  }
  const auto model = model::HdcModel::train(samples, labels, classes, {});
  EXPECT_GT(model.evaluate(samples, labels), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Dims, ModelDims,
                         ::testing::Values(512, 1000, 4096, 10000));

// ----------------------------------------------------- encoder invariance

class EncoderSeeds : public ::testing::TestWithParam<int> {};

TEST_P(EncoderSeeds, EncodingDistanceMonotoneInInputDistance) {
  hv::EncoderConfig config;
  config.dimension = 4096;
  config.seed = static_cast<std::uint64_t>(GetParam());
  hv::RecordEncoder encoder(32, config);
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 7);
  std::vector<float> base(32);
  for (auto& v : base) v = 0.2f + 0.6f * static_cast<float>(rng.uniform());
  const auto h0 = encoder.encode(base);

  double previous = 1.0;
  for (const float delta : {0.02f, 0.08f, 0.2f, 0.4f}) {
    auto moved = base;
    for (auto& v : moved) v = std::clamp(v + delta, 0.0f, 1.0f);
    const double sim = hv::similarity(h0, encoder.encode(moved));
    EXPECT_LT(sim, previous + 0.02) << "delta " << delta;
    previous = sim;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncoderSeeds, ::testing::Values(1, 7, 42));

}  // namespace
}  // namespace robusthd
