// Tests for the hyperdimensional regressor (RegHD extension).
#include "robusthd/model/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "robusthd/fault/injector.hpp"
#include "robusthd/hv/encoder.hpp"
#include "robusthd/util/rng.hpp"
#include "robusthd/util/stats.hpp"

namespace robusthd::model {
namespace {

/// Synthetic regression task: y = sum of a few features + mild
/// nonlinearity, targets in roughly [0, 3].
struct Task {
  std::vector<hv::BinVec> train, test;
  std::vector<double> train_y, test_y;
  double target_spread = 0.0;
};

Task make_task(std::uint64_t seed) {
  const std::size_t features = 24;
  hv::EncoderConfig config;
  config.dimension = 4000;
  hv::RecordEncoder encoder(features, config);
  util::Xoshiro256 rng(seed);

  util::RunningStats spread;
  auto sample = [&](std::vector<hv::BinVec>& xs, std::vector<double>& ys,
                    std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      std::vector<float> x(features);
      for (auto& v : x) v = static_cast<float>(rng.uniform());
      const double y = x[0] + 0.8 * x[1] + 0.5 * x[2] * x[2] +
                       0.05 * rng.normal();
      xs.push_back(encoder.encode(x));
      ys.push_back(y);
      spread.add(y);
    }
  };

  Task task;
  sample(task.train, task.train_y, 400);
  sample(task.test, task.test_y, 150);
  task.target_spread = spread.stddev();
  return task;
}

TEST(HdcRegressor, BeatsPredictingTheMean) {
  const auto task = make_task(1);
  const auto model = HdcRegressor::train(task.train, task.train_y);
  const double error = model.rmse(task.test, task.test_y);
  // Predicting the mean would give RMSE ~= target spread; the regressor
  // must do clearly better.
  EXPECT_LT(error, 0.5 * task.target_spread);
}

TEST(HdcRegressor, PredictionsCorrelateWithTargets) {
  const auto task = make_task(2);
  const auto model = HdcRegressor::train(task.train, task.train_y);
  // Pearson correlation between prediction and truth.
  util::RunningStats ps, ys;
  std::vector<double> preds;
  for (std::size_t i = 0; i < task.test.size(); ++i) {
    preds.push_back(model.predict(task.test[i]));
    ps.add(preds.back());
    ys.add(task.test_y[i]);
  }
  double cov = 0.0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    cov += (preds[i] - ps.mean()) * (task.test_y[i] - ys.mean());
  }
  cov /= static_cast<double>(preds.size() - 1);
  const double correlation = cov / (ps.stddev() * ys.stddev());
  EXPECT_GT(correlation, 0.85);
}

TEST(HdcRegressor, RobustToRandomFlips) {
  const auto task = make_task(3);
  auto model = HdcRegressor::train(task.train, task.train_y);
  const double clean = model.rmse(task.test, task.test_y);
  util::Xoshiro256 rng(4);
  auto regions = model.memory_regions();
  fault::BitFlipInjector::inject(regions, 0.05, fault::AttackMode::kRandom,
                                 rng);
  const double attacked = model.rmse(task.test, task.test_y);
  // Error grows but stays the same order of magnitude (quantised int8
  // hypervector weights degrade; they do not explode the way a dense
  // regression on raw floats would under exponent flips).
  EXPECT_LT(attacked, clean + task.target_spread);
}

TEST(HdcRegressor, HigherDimensionIsMoreRobust) {
  const std::size_t features = 16;
  util::Xoshiro256 rng(5);
  auto build = [&](std::size_t dim) {
    hv::EncoderConfig config;
    config.dimension = dim;
    hv::RecordEncoder encoder(features, config);
    std::vector<hv::BinVec> xs;
    std::vector<double> ys;
    util::Xoshiro256 data_rng(6);  // same data for both dims
    for (int i = 0; i < 300; ++i) {
      std::vector<float> x(features);
      for (auto& v : x) v = static_cast<float>(data_rng.uniform());
      xs.push_back(encoder.encode(x));
      ys.push_back(x[0] + x[1]);
    }
    return std::pair{std::move(xs), std::move(ys)};
  };
  auto [small_x, small_y] = build(500);
  auto [large_x, large_y] = build(8000);
  auto small = HdcRegressor::train(small_x, small_y);
  auto large = HdcRegressor::train(large_x, large_y);

  auto degradation = [&](HdcRegressor& m, auto& xs, auto& ys) {
    const double clean = m.rmse(xs, ys);
    util::RunningStats loss;
    for (int r = 0; r < 3; ++r) {
      auto victim = m;  // copy
      util::Xoshiro256 attack_rng(100 + r);
      auto regions = victim.memory_regions();
      fault::BitFlipInjector::inject(regions, 0.05,
                                     fault::AttackMode::kRandom, attack_rng);
      loss.add(victim.rmse(xs, ys) - clean);
    }
    return loss.mean();
  };
  EXPECT_LT(degradation(large, large_x, large_y),
            degradation(small, small_x, small_y));
}

TEST(HdcRegressor, EmptyTestSetIsZeroError) {
  const auto task = make_task(7);
  const auto model = HdcRegressor::train(task.train, task.train_y);
  EXPECT_DOUBLE_EQ(model.rmse({}, {}), 0.0);
}

}  // namespace
}  // namespace robusthd::model
