// Exhaustive adversarial input sweep for the WAL framing layer, in the
// style of fleet_wire_test: every truncation length and every single-bit
// flip of a multi-record segment goes through SegmentReader, which must
// never throw, never read out of bounds (the ASan job runs this), and
// never hand out a record whose payload differs from what was written.
// A sample of on-disk flips then goes through the full recover_dir stack.
#include "robusthd/persist/wal.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "robusthd/core/serialize.hpp"
#include "robusthd/model/hdc_model.hpp"
#include "robusthd/persist/epoch_log.hpp"
#include "robusthd/persist/recover.hpp"
#include "robusthd/util/fsio.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::persist {
namespace {

struct Original {
  RecordType type;
  std::vector<std::byte> payload;
};

/// A representative segment: prologue, deltas of several sizes, engine
/// state, an epoch close, and a second epoch — every record type, plus
/// payloads that are not multiples of the 8-byte pad.
std::vector<std::byte> build_segment(std::vector<Original>& originals) {
  std::vector<std::byte> segment;
  std::vector<std::byte> payload;
  std::uint64_t seq = 0;

  const auto add = [&](RecordType type) {
    originals.push_back({type, payload});
    encode_record(segment, type, seq++, payload);
    payload.clear();
  };

  encode_base_ref(payload, BaseRef{3, 17});
  add(RecordType::kBaseRef);

  encode_plane_delta(payload, PlaneDelta{18, 0, 0, 0, {0xAAAAAAAAAAAAAAAAull}});
  add(RecordType::kPlaneDelta);

  encode_plane_delta(
      payload, PlaneDelta{19, 2, 1, 7, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}});
  add(RecordType::kPlaneDelta);

  model::RecoveryEngineState state;
  state.total_updates = 5;
  state.total_substituted_bits = 640;
  state.best_health = 0.875;
  state.frozen = false;
  state.class_repairs = {2, 0, 3};
  encode_recovery_state(payload, state);
  add(RecordType::kRecoveryState);

  encode_epoch_close(payload, EpochClose{0, 0x12345678u});
  add(RecordType::kEpochClose);

  encode_plane_delta(payload, PlaneDelta{20, 1, 0, 3, {~0ull, 0ull}});
  add(RecordType::kPlaneDelta);

  encode_epoch_close(payload, EpochClose{1, 0x9ABCDEF0u});
  add(RecordType::kEpochClose);

  return segment;
}

bool payload_equal(std::span<const std::byte> a,
                   std::span<const std::byte> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

/// Scans `bytes` and checks the integrity contract: each yielded record
/// is byte-identical to the original at its position — the reader may
/// stop early (torn or clean), but it must never emit a damaged or
/// reordered record.
void check_scan(std::span<const std::byte> bytes,
                const std::vector<Original>& originals) {
  SegmentReader reader(bytes);
  RecordView record;
  std::size_t index = 0;
  while (reader.next(record)) {
    ASSERT_LT(index, originals.size());
    EXPECT_EQ(record.type, originals[index].type);
    EXPECT_TRUE(payload_equal(record.payload, originals[index].payload));
    ++index;
  }
  EXPECT_LE(reader.offset(), bytes.size());
  // A second next() after the scan ended must stay false (sticky stop).
  EXPECT_FALSE(reader.next(record));
}

TEST(WalFuzz, EveryTruncationLengthScansCleanly) {
  std::vector<Original> originals;
  const auto segment = build_segment(originals);
  ASSERT_GT(segment.size(), kRecordHeaderBytes * originals.size());

  for (std::size_t cut = 0; cut <= segment.size(); ++cut) {
    check_scan(std::span<const std::byte>(segment.data(), cut), originals);
  }
}

TEST(WalFuzz, EverySingleBitFlipScansCleanly) {
  std::vector<Original> originals;
  const auto segment = build_segment(originals);

  std::vector<std::byte> mutated = segment;
  for (std::size_t bit = 0; bit < segment.size() * 8; ++bit) {
    mutated[bit / 8] ^= std::byte{1} << (bit % 8);
    check_scan(mutated, originals);
    mutated[bit / 8] = segment[bit / 8];  // restore
  }
}

TEST(WalFuzz, FlipsOnTopOfTruncationsScanCleanly) {
  std::vector<Original> originals;
  const auto segment = build_segment(originals);
  util::Xoshiro256 rng(71);
  // A randomized double-fault sample: truncate AND flip, which exercises
  // the header-spans-the-end and length-field-points-past-the-end paths.
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t cut = rng.below(segment.size() + 1);
    std::vector<std::byte> mutated(segment.begin(),
                                   segment.begin() + static_cast<std::ptrdiff_t>(cut));
    if (!mutated.empty()) {
      const std::size_t bit = rng.below(mutated.size() * 8);
      mutated[bit / 8] ^= std::byte{1} << (bit % 8);
    }
    check_scan(mutated, originals);
  }
}

// On-disk sample through the full replay stack: a real persist directory
// with one closed epoch, then random single-bit flips in the WAL segment.
// recover_dir must never throw or crash — a flip costs at most records
// (torn tail / CRC mismatch), never safety.
TEST(WalFuzz, OnDiskFlipsNeverBreakRecoverDir) {
  char tmpl[] = "/tmp/robusthd_walfuzz_XXXXXX";
  const char* dir_c = ::mkdtemp(tmpl);
  ASSERT_NE(dir_c, nullptr);
  const std::string dir = dir_c;

  util::Xoshiro256 rng(73);
  std::vector<hv::BinVec> train;
  std::vector<int> labels;
  for (std::size_t c = 0; c < 3; ++c) {
    auto proto = hv::BinVec::random(512, rng);
    for (int i = 0; i < 6; ++i) {
      auto v = proto;
      for (std::size_t d = 0; d < 512; ++d) {
        if (rng.bernoulli(0.04)) v.flip(d);
      }
      train.push_back(std::move(v));
      labels.push_back(static_cast<int>(c));
    }
  }
  auto model = model::HdcModel::train(train, labels, 3, {});

  PersistConfig config;
  config.dir = dir;
  {
    EpochLog log(config, core::serialize_model(model, {}), 0);
    for (std::uint64_t version = 1; version <= 5; ++version) {
      PlaneWrite write;
      write.cls = static_cast<std::uint32_t>(version % 3);
      write.plane = 0;
      write.word_begin = version;
      write.words = {rng.next(), rng.next()};
      log.append_publication(version, {std::move(write)}, std::nullopt);
    }
    log.close_epoch();
  }

  const auto segment_path = dir + "/" + segment_file_name(0, 0);
  const auto pristine = util::read_file(segment_path, 1u << 20);
  ASSERT_FALSE(pristine.empty());

  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = pristine;
    const std::size_t bit = rng.below(mutated.size() * 8);
    mutated[bit / 8] ^= std::byte{1} << (bit % 8);
    util::atomic_write_file(segment_path, mutated);

    std::optional<Recovered> rec;
    ASSERT_NO_THROW(rec = recover_dir(dir));
    // The base checkpoint is untouched, so recovery always has a model —
    // possibly with fewer (or zero) epochs applied, flagged by the stats.
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->model.dimension(), model.dimension());
    EXPECT_EQ(rec->model.num_classes(), model.num_classes());
  }

  util::atomic_write_file(segment_path, pristine);
  const auto rec = recover_dir(dir);
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->stats.state_crc_ok);

  for (const auto& name : util::list_dir(dir)) {
    util::remove_file(dir + "/" + name);
  }
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace robusthd::persist
