// Tests for streaming statistics and evaluation metrics.
#include "robusthd/util/stats.hpp"

#include <gtest/gtest.h>

namespace robusthd::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Accuracy, CountsMatches) {
  const int pred[] = {0, 1, 2, 1};
  const int truth[] = {0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(accuracy(pred, truth), 0.75);
}

TEST(Accuracy, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
}

TEST(QualityLoss, FlooredAtZero) {
  EXPECT_NEAR(quality_loss(0.95, 0.90), 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(quality_loss(0.90, 0.95), 0.0);
}

TEST(ConfusionMatrix, AccumulatesAndScores) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 0);
  EXPECT_EQ(cm.at(0, 0), 2u);
  EXPECT_EQ(cm.at(0, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
}

TEST(ConfusionMatrix, IgnoresOutOfRange) {
  ConfusionMatrix cm(2);
  cm.add(-1, 0);
  cm.add(0, 5);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
}

TEST(Softmax, SumsToOneAndOrders) {
  const double scores[] = {1.0, 2.0, 3.0};
  const auto p = softmax(scores);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(Softmax, TemperatureSharpens) {
  const double scores[] = {1.0, 2.0};
  const auto soft = softmax(scores, 10.0);
  const auto sharp = softmax(scores, 0.1);
  EXPECT_LT(soft[1], sharp[1]);
  EXPECT_GT(sharp[1], 0.99);
}

TEST(Softmax, StableUnderLargeInputs) {
  const double scores[] = {1000.0, 1001.0};
  const auto p = softmax(scores);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_GT(p[1], p[0]);
}

TEST(Percentile, InterpolatesCorrectly) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

}  // namespace
}  // namespace robusthd::util
