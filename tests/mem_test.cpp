// Tests for the DRAM refresh-relaxation and ECC models.
#include <gtest/gtest.h>

#include "robusthd/mem/dram.hpp"
#include "robusthd/mem/ecc.hpp"

namespace robusthd::mem {
namespace {

TEST(Dram, BaseIntervalHasNegligibleErrors) {
  const DramParams dram = DramParams::ddr4();
  EXPECT_LT(bit_error_rate(dram.base_refresh_ms, dram), 1e-4);
}

TEST(Dram, ErrorRateMonotoneInInterval) {
  const DramParams dram;
  double previous = 0.0;
  for (const double interval : {64.0, 128.0, 512.0, 2048.0, 8192.0}) {
    const double ber = bit_error_rate(interval, dram);
    EXPECT_GE(ber, previous);
    previous = ber;
  }
  EXPECT_GT(previous, 0.3);  // far beyond the median retention
}

TEST(Dram, IntervalInversionRoundTrips) {
  const DramParams dram;
  for (const double ber : {0.01, 0.04, 0.06, 0.10}) {
    const double interval = interval_for_error_rate(ber, dram);
    EXPECT_NEAR(bit_error_rate(interval, dram), ber, ber * 0.02);
  }
}

TEST(Dram, RelaxingSavesRefreshPowerOnly) {
  const DramParams dram;
  EXPECT_DOUBLE_EQ(relative_power(dram.base_refresh_ms, dram), 1.0);
  const double relaxed = relative_power(dram.base_refresh_ms * 10, dram);
  // Saves up to the refresh share, never more.
  EXPECT_LT(relaxed, 1.0);
  EXPECT_GT(relaxed, 1.0 - dram.refresh_power_fraction);
  // Shrinking the interval below base does not "gain" power.
  EXPECT_DOUBLE_EQ(relative_power(1.0, dram), 1.0);
}

TEST(Dram, EfficiencyGainSaturatesAtRefreshShare) {
  const DramParams dram;
  const double gain = energy_efficiency_gain(1e9, dram);
  EXPECT_NEAR(gain, dram.refresh_power_fraction, 1e-6);
  EXPECT_GT(energy_efficiency_gain(640.0, dram), 0.0);
}

TEST(Ecc, StorageOverheadIsAnEighth) {
  EccParams params;
  EXPECT_DOUBLE_EQ(params.storage_overhead(), 0.125);
}

TEST(Ecc, NoErrorsNoFailures) {
  EXPECT_DOUBLE_EQ(uncorrectable_word_rate(0.0), 0.0);
  EXPECT_DOUBLE_EQ(residual_bit_error_rate(0.0), 0.0);
}

TEST(Ecc, SingleErrorsAreCorrected) {
  // At very low BER nearly every faulty word has exactly one flip, which
  // SECDED corrects: residual rate is ~quadratically suppressed.
  const double ber = 1e-6;
  EXPECT_LT(uncorrectable_word_rate(ber), 1e-8);
  EXPECT_LT(residual_bit_error_rate(ber), ber / 100.0);
}

TEST(Ecc, PercentLevelBerOverwhelmsSecded) {
  // The paper's point: at relaxed-refresh error rates ECC stops helping.
  for (const double ber : {0.02, 0.04, 0.06}) {
    EXPECT_GT(uncorrectable_word_rate(ber), 0.3);
    EXPECT_GT(residual_bit_error_rate(ber), ber * 0.5);
  }
}

TEST(Ecc, MonotoneInBer) {
  double previous = 0.0;
  for (const double ber : {1e-5, 1e-4, 1e-3, 1e-2, 0.1}) {
    const double rate = uncorrectable_word_rate(ber);
    EXPECT_GT(rate, previous);
    previous = rate;
  }
  EXPECT_DOUBLE_EQ(uncorrectable_word_rate(1.0), 1.0);
}

}  // namespace
}  // namespace robusthd::mem
