// Tests for model serialisation.
#include "robusthd/core/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "robusthd/data/synthetic.hpp"
#include "robusthd/fault/injector.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::core {
namespace {

data::Split small_split() {
  const auto spec = data::scaled(data::dataset_by_name("PAMAP"), 300, 100);
  return data::make_synthetic(spec);
}

HdcClassifierConfig small_config() {
  HdcClassifierConfig config;
  config.encoder.dimension = 2000;
  return config;
}

TEST(Serialize, BlobRoundTripsPredictions) {
  const auto split = small_split();
  auto original = HdcClassifier::train(split.train, small_config());
  const auto blob = serialize(original);
  EXPECT_GT(blob.size(), 1000u);

  auto restored = deserialize(blob);
  EXPECT_EQ(restored.model().num_classes(), original.model().num_classes());
  EXPECT_EQ(restored.model().dimension(), original.model().dimension());
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    ASSERT_EQ(restored.predict(split.test.sample(i)),
              original.predict(split.test.sample(i)))
        << "sample " << i;
  }
}

TEST(Serialize, RoundTripsMultibitModels) {
  const auto split = small_split();
  auto config = small_config();
  config.model.precision_bits = 2;
  auto original = HdcClassifier::train(split.train, config);
  auto restored = deserialize(serialize(original));
  EXPECT_EQ(restored.model().precision_bits(), 2u);
  for (std::size_t i = 0; i < 30; ++i) {
    ASSERT_EQ(restored.predict(split.test.sample(i)),
              original.predict(split.test.sample(i)));
  }
}

TEST(Serialize, RejectsGarbage) {
  std::vector<std::byte> garbage(64, std::byte{0xAB});
  EXPECT_THROW(deserialize(garbage), std::runtime_error);
  std::vector<std::byte> tiny(4, std::byte{0});
  EXPECT_THROW(deserialize(tiny), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedBlob) {
  const auto split = small_split();
  auto original = HdcClassifier::train(split.train, small_config());
  auto blob = serialize(original);
  blob.resize(blob.size() / 2);
  EXPECT_THROW(deserialize(blob), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const auto split = small_split();
  auto original = HdcClassifier::train(split.train, small_config());
  const std::string path = "/tmp/robusthd_serialize_test.rhd";
  save_model(original, path);
  auto restored = load_model(path);
  std::remove(path.c_str());
  EXPECT_NEAR(restored.evaluate(split.test), original.evaluate(split.test),
              1e-12);
}

TEST(Serialize, FileErrorsThrow) {
  EXPECT_THROW(load_model("/nonexistent/dir/model.rhd"), std::runtime_error);
  const auto split = small_split();
  auto clf = HdcClassifier::train(split.train, small_config());
  EXPECT_THROW(save_model(clf, "/nonexistent/dir/model.rhd"),
               std::runtime_error);
}

TEST(Serialize, AttackedModelSurvivesRoundTrip) {
  // Serialisation must preserve the *exact* stored bits — including
  // injected faults (the blob is the attack surface at rest).
  const auto split = small_split();
  auto original = HdcClassifier::train(split.train, small_config());
  util::Xoshiro256 rng(1);
  auto regions = original.memory_regions();
  fault::BitFlipInjector::inject(regions, 0.1, fault::AttackMode::kRandom,
                                 rng);
  auto restored = deserialize(serialize(original));
  // Compare the D meaningful bits (deserialisation re-zeros the padding
  // bits of the final word, which the injector may have flipped).
  for (std::size_t c = 0; c < original.model().num_classes(); ++c) {
    const auto& a = restored.model().class_vector(c).planes[0];
    const auto& b = original.model().class_vector(c).planes[0];
    EXPECT_EQ(hv::hamming_range(a, b, 0, a.dimension()), 0u) << c;
  }
}

}  // namespace
}  // namespace robusthd::core
