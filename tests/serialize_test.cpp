// Tests for model serialisation.
#include "robusthd/core/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "robusthd/core/storage_integrity.hpp"
#include "robusthd/data/synthetic.hpp"
#include "robusthd/fault/injector.hpp"
#include "robusthd/util/crc32c.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::core {
namespace {

data::Split small_split() {
  const auto spec = data::scaled(data::dataset_by_name("PAMAP"), 300, 100);
  return data::make_synthetic(spec);
}

HdcClassifierConfig small_config() {
  HdcClassifierConfig config;
  config.encoder.dimension = 2000;
  return config;
}

TEST(Serialize, BlobRoundTripsPredictions) {
  const auto split = small_split();
  auto original = HdcClassifier::train(split.train, small_config());
  const auto blob = serialize(original);
  EXPECT_GT(blob.size(), 1000u);

  auto restored = deserialize(blob);
  EXPECT_EQ(restored.model().num_classes(), original.model().num_classes());
  EXPECT_EQ(restored.model().dimension(), original.model().dimension());
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    ASSERT_EQ(restored.predict(split.test.sample(i)),
              original.predict(split.test.sample(i)))
        << "sample " << i;
  }
}

TEST(Serialize, RoundTripsMultibitModels) {
  const auto split = small_split();
  auto config = small_config();
  config.model.precision_bits = 2;
  auto original = HdcClassifier::train(split.train, config);
  auto restored = deserialize(serialize(original));
  EXPECT_EQ(restored.model().precision_bits(), 2u);
  for (std::size_t i = 0; i < 30; ++i) {
    ASSERT_EQ(restored.predict(split.test.sample(i)),
              original.predict(split.test.sample(i)));
  }
}

TEST(Serialize, RejectsGarbage) {
  std::vector<std::byte> garbage(64, std::byte{0xAB});
  EXPECT_THROW(deserialize(garbage), std::runtime_error);
  std::vector<std::byte> tiny(4, std::byte{0});
  EXPECT_THROW(deserialize(tiny), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedBlob) {
  const auto split = small_split();
  auto original = HdcClassifier::train(split.train, small_config());
  auto blob = serialize(original);
  blob.resize(blob.size() / 2);
  EXPECT_THROW(deserialize(blob), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const auto split = small_split();
  auto original = HdcClassifier::train(split.train, small_config());
  const std::string path = "/tmp/robusthd_serialize_test.rhd";
  save_model(original, path);
  auto restored = load_model(path);
  std::remove(path.c_str());
  EXPECT_NEAR(restored.evaluate(split.test), original.evaluate(split.test),
              1e-12);
}

TEST(Serialize, FileErrorsThrow) {
  EXPECT_THROW(load_model("/nonexistent/dir/model.rhd"), std::runtime_error);
  const auto split = small_split();
  auto clf = HdcClassifier::train(split.train, small_config());
  EXPECT_THROW(save_model(clf, "/nonexistent/dir/model.rhd"),
               std::runtime_error);
}

TEST(Serialize, AttackedModelSurvivesRoundTrip) {
  // Serialisation must preserve the *exact* stored bits — including
  // injected faults (the blob is the attack surface at rest).
  const auto split = small_split();
  auto original = HdcClassifier::train(split.train, small_config());
  util::Xoshiro256 rng(1);
  auto regions = original.memory_regions();
  fault::BitFlipInjector::inject(regions, 0.1, fault::AttackMode::kRandom,
                                 rng);
  auto restored = deserialize(serialize(original));
  // Compare the D meaningful bits (deserialisation re-zeros the padding
  // bits of the final word, which the injector may have flipped).
  for (std::size_t c = 0; c < original.model().num_classes(); ++c) {
    const auto& a = restored.model().class_vector(c).planes[0];
    const auto& b = original.model().class_vector(c).planes[0];
    EXPECT_EQ(hv::hamming_range(a, b, 0, a.dimension()), 0u) << c;
  }
}

void flip_bit(std::vector<std::byte>& blob, std::size_t bit) {
  blob[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
}

/// Patches a little-endian field into an RHD2 header and re-fixes the
/// header CRC (bytes [0, 60)) so only the *semantic* validation can
/// reject it — models a hostile writer, not random corruption.
template <typename T>
void patch_rhd2_field(std::vector<std::byte>& blob, std::size_t offset,
                      T value) {
  std::memcpy(blob.data() + offset, &value, sizeof(T));
  const std::uint32_t crc = util::crc32c(blob.data(), 60);
  std::memcpy(blob.data() + 60, &crc, sizeof(crc));
}

TEST(Serialize, InspectReportsShapeAndFormat) {
  const auto split = small_split();
  auto clf = HdcClassifier::train(split.train, small_config());

  const auto info = inspect(serialize(clf));
  EXPECT_EQ(info.version, kFormatRhd2);
  EXPECT_TRUE(info.integrity_checked);
  EXPECT_EQ(info.dimension, clf.model().dimension());
  EXPECT_EQ(info.num_classes, clf.model().num_classes());
  EXPECT_EQ(info.precision_bits, clf.model().precision_bits());
  EXPECT_EQ(info.feature_count, clf.encoder().feature_count());
  EXPECT_EQ(info.levels, clf.encoder_config().levels);
  EXPECT_EQ(info.encoder_seed, clf.encoder_config().seed);

  const auto legacy = inspect(serialize_rhd1(clf));
  EXPECT_EQ(legacy.version, kFormatRhd1);
  EXPECT_FALSE(legacy.integrity_checked);
  EXPECT_EQ(legacy.dimension, info.dimension);
}

TEST(Serialize, LegacyRhd1BlobsStillLoad) {
  // Backward compatibility: blobs written by the pre-RHD2 format must
  // keep loading bit-exactly.
  const auto split = small_split();
  auto original = HdcClassifier::train(split.train, small_config());
  auto restored = deserialize(serialize_rhd1(original));
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    ASSERT_EQ(restored.predict(split.test.sample(i)),
              original.predict(split.test.sample(i)))
        << "sample " << i;
  }
}

TEST(Serialize, RejectsTrailingBytes) {
  const auto split = small_split();
  auto clf = HdcClassifier::train(split.train, small_config());
  for (const bool legacy : {false, true}) {
    auto blob = legacy ? serialize_rhd1(clf) : serialize(clf);
    blob.push_back(std::byte{0});
    try {
      deserialize(blob);
      FAIL() << "trailing byte accepted (legacy=" << legacy << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos)
          << e.what();
    }
  }
}

TEST(Serialize, EveryTruncationLengthRejected) {
  const auto split = small_split();
  auto clf = HdcClassifier::train(split.train, small_config());
  for (const bool legacy : {false, true}) {
    const auto blob = legacy ? serialize_rhd1(clf) : serialize(clf);
    // Every header cut, then a stride through the payload lengths.
    for (std::size_t len = 0; len < blob.size();
         len = (len < 64) ? len + 1 : len + 61) {
      std::vector<std::byte> cut(blob.begin(), blob.begin() + len);
      EXPECT_THROW(deserialize(cut), std::runtime_error)
          << "length " << len << " accepted (legacy=" << legacy << ")";
    }
  }
}

TEST(Serialize, EverySingleBitFlipIsDetected) {
  // The acceptance bar: a single flipped bit *anywhere* in an RHD2 blob
  // — header fields, either CRC, or payload — must make loading fail.
  const auto split = small_split();
  auto clf = HdcClassifier::train(split.train, small_config());
  auto blob = serialize(clf);
  for (std::size_t bit = 0; bit < blob.size() * 8; ++bit) {
    flip_bit(blob, bit);
    EXPECT_THROW(deserialize(blob), std::runtime_error)
        << "single-bit flip at bit " << bit << " loaded silently";
    flip_bit(blob, bit);
  }
  EXPECT_NO_THROW(deserialize(blob));  // restored blob is intact
}

TEST(Serialize, RandomMultiBitCorruptionDetected) {
  const auto split = small_split();
  auto clf = HdcClassifier::train(split.train, small_config());
  const auto blob = serialize(clf);
  util::Xoshiro256 rng(7);
  for (const double rate : {0.001, 0.01, 0.1}) {
    const auto cell = storage_roundtrip(blob, rate, 40, rng);
    EXPECT_EQ(cell.detected, cell.corrupted) << "rate " << rate;
  }
}

TEST(Serialize, HeaderBoundsCheckedIndependentlyOfCrc) {
  // A hostile writer can produce a blob with *valid* CRCs and an insane
  // shape; the sanity bounds must reject it before any allocation.
  // HeaderV2 offsets: dimension 8, levels 16, feature_count 32,
  // precision_bits 40, num_classes 44, payload_bytes 48.
  const auto split = small_split();
  auto clf = HdcClassifier::train(split.train, small_config());
  const auto good = serialize(clf);

  const auto expect_reject = [&](std::size_t offset, auto value,
                                 const char* what) {
    auto blob = good;
    patch_rhd2_field(blob, offset, value);
    EXPECT_THROW(deserialize(blob), std::runtime_error) << what;
  };
  expect_reject(8, std::uint64_t{kMaxDimension + 1}, "dimension bound");
  expect_reject(8, std::uint64_t{0}, "zero dimension");
  expect_reject(16, std::uint64_t{kMaxLevels + 1}, "levels bound");
  expect_reject(32, std::uint64_t{kMaxFeatureCount + 1}, "features bound");
  expect_reject(40, std::uint32_t{0}, "zero precision");
  expect_reject(40, std::uint32_t{9}, "precision bound");
  expect_reject(44, std::uint32_t{0}, "zero classes");
  expect_reject(44, std::uint32_t{kMaxClasses + 1}, "classes bound");
  expect_reject(48, std::uint64_t{1}, "payload size mismatch");

  // Control: re-patching the true dimension leaves the blob loadable.
  auto blob = good;
  patch_rhd2_field(blob, 8, std::uint64_t{clf.model().dimension()});
  EXPECT_NO_THROW(deserialize(blob));
}

TEST(Serialize, Rhd1HeaderBoundsChecked) {
  // The legacy path carries no CRC, so bounds are its *only* defence —
  // the original loader skipped them entirely (the bug this PR fixes).
  const auto split = small_split();
  auto clf = HdcClassifier::train(split.train, small_config());
  const auto good = serialize_rhd1(clf);

  const auto expect_reject = [&](std::size_t offset, auto value,
                                 const char* what) {
    auto blob = good;
    std::memcpy(blob.data() + offset, &value, sizeof(value));
    EXPECT_THROW(deserialize(blob), std::runtime_error) << what;
  };
  // HeaderV1 offsets: dimension 8, levels 16, feature_count 32,
  // precision_bits 40, num_classes 44.
  expect_reject(8, std::uint64_t{kMaxDimension + 1}, "dimension bound");
  expect_reject(16, std::uint64_t{kMaxLevels + 1}, "levels bound");
  expect_reject(32, std::uint64_t{kMaxFeatureCount + 1}, "features bound");
  expect_reject(40, std::uint32_t{0}, "zero precision");
  expect_reject(44, std::uint32_t{kMaxClasses + 1}, "classes bound");
}

}  // namespace
}  // namespace robusthd::core
