// Tests for the HDC classifier: training, scoring, chunked scoring,
// precision variants, and attackable memory regions.
#include "robusthd/model/hdc_model.hpp"

#include <gtest/gtest.h>

#include "robusthd/util/rng.hpp"

namespace robusthd::model {
namespace {

constexpr std::size_t kDim = 2048;

/// Builds a toy training set: per class one prototype hypervector plus
/// noisy copies (bits flipped with probability `noise`).
struct Toy {
  std::vector<hv::BinVec> prototypes;
  std::vector<hv::BinVec> samples;
  std::vector<int> labels;
};

Toy make_toy(std::size_t classes, std::size_t per_class, double noise,
             std::uint64_t seed) {
  Toy toy;
  util::Xoshiro256 rng(seed);
  for (std::size_t c = 0; c < classes; ++c) {
    toy.prototypes.push_back(hv::BinVec::random(kDim, rng));
  }
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      auto v = toy.prototypes[c];
      for (std::size_t d = 0; d < kDim; ++d) {
        if (rng.bernoulli(noise)) v.flip(d);
      }
      toy.samples.push_back(std::move(v));
      toy.labels.push_back(static_cast<int>(c));
    }
  }
  return toy;
}

TEST(HdcModel, LearnsSeparableToyProblem) {
  const auto toy = make_toy(4, 20, 0.15, 1);
  const auto model = HdcModel::train(toy.samples, toy.labels, 4, {});
  EXPECT_EQ(model.num_classes(), 4u);
  EXPECT_EQ(model.dimension(), kDim);
  EXPECT_GE(model.evaluate(toy.samples, toy.labels), 0.99);
  // Fresh noisy queries also classify correctly.
  util::Xoshiro256 rng(2);
  for (std::size_t c = 0; c < 4; ++c) {
    auto q = toy.prototypes[c];
    for (std::size_t d = 0; d < kDim; ++d) {
      if (rng.bernoulli(0.2)) q.flip(d);
    }
    EXPECT_EQ(model.predict(q), static_cast<int>(c));
  }
}

TEST(HdcModel, ScoresOrderedBySimilarity) {
  const auto toy = make_toy(3, 10, 0.1, 3);
  const auto model = HdcModel::train(toy.samples, toy.labels, 3, {});
  const auto scores = model.scores(toy.prototypes[1]);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_GT(scores[1], scores[0]);
  EXPECT_GT(scores[1], scores[2]);
  for (const auto s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(HdcModel, ChunkScoresAverageToGlobalScore) {
  const auto toy = make_toy(3, 10, 0.1, 4);
  const auto model = HdcModel::train(toy.samples, toy.labels, 3, {});
  const auto& q = toy.samples[0];
  const auto global = model.scores(q);
  const std::size_t m = 16;
  std::vector<double> weighted(3, 0.0);
  for (std::size_t c = 0; c < m; ++c) {
    const std::size_t begin = c * kDim / m;
    const std::size_t end = (c + 1) * kDim / m;
    const auto local = model.chunk_scores(q, begin, end);
    for (std::size_t k = 0; k < 3; ++k) {
      weighted[k] += local[k] * static_cast<double>(end - begin);
    }
  }
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(weighted[k] / kDim, global[k], 1e-9);
  }
}

TEST(HdcModel, RetrainingFixesSinglePassErrors) {
  // Close prototypes (0.3 apart) with high sample noise: single-pass
  // bundling struggles; retraining should improve training accuracy.
  util::Xoshiro256 rng(5);
  auto base = hv::BinVec::random(kDim, rng);
  std::vector<hv::BinVec> prototypes;
  for (int c = 0; c < 3; ++c) {
    auto p = base;
    for (std::size_t d = 0; d < kDim; ++d) {
      if (rng.bernoulli(0.15)) p.flip(d);
    }
    prototypes.push_back(std::move(p));
  }
  std::vector<hv::BinVec> samples;
  std::vector<int> labels;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 30; ++i) {
      auto v = prototypes[static_cast<std::size_t>(c)];
      for (std::size_t d = 0; d < kDim; ++d) {
        if (rng.bernoulli(0.2)) v.flip(d);
      }
      samples.push_back(std::move(v));
      labels.push_back(c);
    }
  }
  HdcConfig no_retrain;
  no_retrain.retrain_epochs = 0;
  HdcConfig with_retrain;
  with_retrain.retrain_epochs = 20;
  const auto plain = HdcModel::train(samples, labels, 3, no_retrain);
  const auto tuned = HdcModel::train(samples, labels, 3, with_retrain);
  EXPECT_GE(tuned.evaluate(samples, labels),
            plain.evaluate(samples, labels));
}

TEST(HdcModel, TwoBitModelHasTwoPlanes) {
  const auto toy = make_toy(2, 10, 0.1, 6);
  HdcConfig config;
  config.precision_bits = 2;
  const auto model = HdcModel::train(toy.samples, toy.labels, 2, config);
  EXPECT_EQ(model.precision_bits(), 2u);
  EXPECT_EQ(model.class_vector(0).planes.size(), 2u);
  EXPECT_GE(model.evaluate(toy.samples, toy.labels), 0.99);
}

TEST(HdcModel, MemoryRegionsCoverAllPlanes) {
  const auto toy = make_toy(3, 5, 0.1, 7);
  HdcConfig config;
  config.precision_bits = 2;
  auto model = HdcModel::train(toy.samples, toy.labels, 3, config);
  auto regions = model.memory_regions();
  EXPECT_EQ(regions.size(), 6u);  // 3 classes x 2 planes
  for (const auto& r : regions) {
    EXPECT_EQ(r.value_bits, 1u);
    EXPECT_EQ(r.bytes.size(), util::words_for_bits(kDim) * 8);
  }
}

TEST(HdcModel, RegionWritesReachTheModel) {
  const auto toy = make_toy(2, 10, 0.05, 8);
  auto model = HdcModel::train(toy.samples, toy.labels, 2, {});
  const auto before = model.class_vector(0).planes[0];
  auto regions = model.memory_regions();
  // Flip one byte of class 0's plane through the region view.
  regions[0].bytes[0] ^= std::byte{0xFF};
  EXPECT_NE(model.class_vector(0).planes[0], before);
}

TEST(HdcModel, EmptyQuerySetScoresZero) {
  const auto toy = make_toy(2, 5, 0.1, 9);
  const auto model = HdcModel::train(toy.samples, toy.labels, 2, {});
  EXPECT_DOUBLE_EQ(model.evaluate({}, {}), 0.0);
}

class HdcPrecision : public ::testing::TestWithParam<unsigned> {};

TEST_P(HdcPrecision, HigherPrecisionStillClassifies) {
  const auto toy = make_toy(3, 15, 0.12, GetParam());
  HdcConfig config;
  config.precision_bits = GetParam();
  const auto model = HdcModel::train(toy.samples, toy.labels, 3, config);
  EXPECT_GE(model.evaluate(toy.samples, toy.labels), 0.95)
      << "precision " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Precisions, HdcPrecision,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace robusthd::model
