// Adversarial tests for the fleet wire protocol, in the spirit of
// serialize_test's storage fuzz: every single-bit flip of a valid frame
// must be rejected, every truncation must park the reader (not crash
// it), hostile length prefixes must not allocate, and garbage streams
// must poison the connection. This binary runs under ASan in CI.
#include "robusthd/fleet/wire.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <vector>

#include "robusthd/util/crc32c.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::fleet::wire {
namespace {

hv::BinVec make_query(std::size_t dim, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return hv::BinVec::random(dim, rng);
}

std::vector<std::byte> request_frame(std::uint64_t tenant,
                                     std::uint64_t request,
                                     const hv::BinVec& query) {
  std::vector<std::byte> out;
  append_predict_request(out, tenant, request, query);
  return out;
}

/// Recomputes the header CRC after a test mutated header fields — for
/// crafting frames that are hostile yet pass the CRC gate.
void fix_header_crc(std::vector<std::byte>& frame) {
  const std::uint32_t crc = util::crc32c(frame.data(), kHeaderSize - 4);
  std::memcpy(frame.data() + kHeaderSize - 4, &crc, 4);
}

/// Feeds the whole buffer and drains every available frame.
std::vector<Frame> drain(FrameReader& reader,
                         const std::vector<std::byte>& bytes) {
  reader.feed(bytes);
  std::vector<Frame> frames;
  while (auto f = reader.next()) frames.push_back(*f);
  return frames;
}

// ------------------------------------------------------------ round trips --

TEST(FleetWire, PredictRequestRoundTrip) {
  const auto query = make_query(1000, 42);
  const auto bytes = request_frame(7, 99, query);
  FrameReader reader;
  const auto frames = drain(reader, bytes);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kPredictRequest);
  EXPECT_EQ(frames[0].tenant_id, 7u);
  EXPECT_EQ(frames[0].request_id, 99u);
  hv::BinVec decoded;
  ASSERT_TRUE(parse_predict_request(frames[0].payload, decoded));
  EXPECT_EQ(decoded, query);
  EXPECT_FALSE(reader.poisoned());
}

TEST(FleetWire, PredictResponseRoundTripIsBitIdentical) {
  PredictResult result;
  result.predicted = 3;
  result.confidence = 0.123456789012345678;  // exercises full mantissa
  result.model_version = 17;
  result.trusted = true;
  result.degraded = true;
  result.abstained = false;
  std::vector<std::byte> bytes;
  append_predict_response(bytes, 1, 2, result);
  FrameReader reader;
  const auto frames = drain(reader, bytes);
  ASSERT_EQ(frames.size(), 1u);
  const auto parsed = parse_predict_response(frames[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->predicted, 3);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed->confidence),
            std::bit_cast<std::uint64_t>(result.confidence));
  EXPECT_EQ(parsed->model_version, 17u);
  EXPECT_TRUE(parsed->trusted);
  EXPECT_TRUE(parsed->degraded);
  EXPECT_FALSE(parsed->abstained);
}

TEST(FleetWire, ErrorRoundTripAndMessageBound) {
  std::vector<std::byte> bytes;
  append_error(bytes, 0, 5, ErrorCode::kBusy, std::string(1000, 'x'));
  FrameReader reader;
  const auto frames = drain(reader, bytes);
  ASSERT_EQ(frames.size(), 1u);
  const auto info = parse_error(frames[0].payload);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->code, ErrorCode::kBusy);
  EXPECT_EQ(info->message.size(), 256u);  // truncated, not trusted
}

TEST(FleetWire, DeadlineRoundTripsInV1Header) {
  const auto query = make_query(777, 13);
  std::vector<std::byte> bytes;
  append_predict_request(bytes, 3, 44, query, /*deadline_ms=*/2500);
  // A nonzero deadline widens the header to the v1 layout.
  const std::size_t payload_size = 4 + query.word_count() * 8;
  EXPECT_EQ(bytes.size(), kHeaderSizeV1 + payload_size + kTrailerSize);
  FrameReader reader;
  const auto frames = drain(reader, bytes);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].deadline_ms, 2500u);
  EXPECT_EQ(frames[0].tenant_id, 3u);
  EXPECT_EQ(frames[0].request_id, 44u);
  hv::BinVec decoded;
  ASSERT_TRUE(parse_predict_request(frames[0].payload, decoded));
  EXPECT_EQ(decoded, query);
  EXPECT_FALSE(reader.poisoned());
}

TEST(FleetWire, ZeroDeadlineEncodesBitIdenticalLegacyFrame) {
  // Acceptance criterion: a deadline-less frame must be byte-for-byte
  // what the pre-deadline encoder produced, so old peers keep working.
  // Rebuild the legacy 32-byte-header frame by hand and compare.
  const auto query = make_query(320, 21);
  const auto bytes = request_frame(9, 77, query);

  std::vector<std::byte> legacy;
  auto put32 = [&legacy](std::uint32_t v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    legacy.insert(legacy.end(), p, p + 4);
  };
  auto put64 = [&legacy](std::uint64_t v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    legacy.insert(legacy.end(), p, p + 8);
  };
  std::vector<std::byte> payload;
  {
    const std::uint32_t dim = static_cast<std::uint32_t>(query.dimension());
    const auto* p = reinterpret_cast<const std::byte*>(&dim);
    payload.insert(payload.end(), p, p + 4);
    const auto words = query.words();
    const auto* w = reinterpret_cast<const std::byte*>(words.data());
    payload.insert(payload.end(), w, w + words.size_bytes());
  }
  put32(kMagic);
  legacy.push_back(std::byte{1});  // kPredictRequest
  legacy.push_back(std::byte{0});  // flags
  legacy.push_back(std::byte{0});  // reserved / version 0
  legacy.push_back(std::byte{0});
  put64(9);   // tenant
  put64(77);  // request
  put32(static_cast<std::uint32_t>(payload.size()));
  put32(util::crc32c(legacy.data(), kHeaderSize - 4));
  legacy.insert(legacy.end(), payload.begin(), payload.end());
  put32(util::crc32c(payload));

  EXPECT_EQ(bytes, legacy);
}

TEST(FleetWire, V1EverySingleBitFlipIsRejected) {
  // Deadline-field fuzz: corrupting any bit of a v1 frame — including
  // the new deadline bytes — must poison the reader, never yield a
  // frame with a wrong deadline.
  const auto query = make_query(200, 8);
  std::vector<std::byte> bytes;
  append_predict_request(bytes, 21, 22, query, /*deadline_ms=*/999);
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto corrupted = bytes;
    corrupted[bit / 8] ^= std::byte{1} << (bit % 8);
    FrameReader reader;
    const auto frames = drain(reader, corrupted);
    EXPECT_TRUE(frames.empty()) << "flip at bit " << bit;
    EXPECT_TRUE(reader.poisoned()) << "flip at bit " << bit;
  }
}

TEST(FleetWire, V1EveryTruncationParksWithoutAFrame) {
  const auto query = make_query(300, 3);
  std::vector<std::byte> bytes;
  append_predict_request(bytes, 4, 5, query, /*deadline_ms=*/17);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    FrameReader reader;
    reader.feed({bytes.data(), len});
    EXPECT_FALSE(reader.next().has_value()) << "prefix length " << len;
    EXPECT_FALSE(reader.poisoned()) << "prefix length " << len;
    reader.feed({bytes.data() + len, bytes.size() - len});
    const auto f = reader.next();
    ASSERT_TRUE(f.has_value()) << "prefix length " << len;
    EXPECT_EQ(f->deadline_ms, 17u) << "prefix length " << len;
  }
}

TEST(FleetWire, MultipleFramesInOneFeed) {
  const auto query = make_query(256, 1);
  std::vector<std::byte> bytes = request_frame(1, 1, query);
  const auto second = request_frame(2, 2, query);
  bytes.insert(bytes.end(), second.begin(), second.end());
  FrameReader reader;
  const auto frames = drain(reader, bytes);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].tenant_id, 1u);
  EXPECT_EQ(frames[1].tenant_id, 2u);
}

TEST(FleetWire, ByteAtATimeDelivery) {
  const auto query = make_query(512, 9);
  const auto bytes = request_frame(11, 12, query);
  FrameReader reader;
  std::size_t complete = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    reader.feed({bytes.data() + i, 1});
    while (auto f = reader.next()) {
      ++complete;
      hv::BinVec decoded;
      EXPECT_TRUE(parse_predict_request(f->payload, decoded));
      EXPECT_EQ(decoded, query);
    }
    EXPECT_FALSE(reader.poisoned());
  }
  EXPECT_EQ(complete, 1u);
}

// ----------------------------------------------------------- truncation --

TEST(FleetWire, EveryTruncationParksWithoutAFrame) {
  const auto query = make_query(300, 3);
  const auto bytes = request_frame(4, 5, query);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    FrameReader reader;
    reader.feed({bytes.data(), len});
    EXPECT_FALSE(reader.next().has_value()) << "prefix length " << len;
    EXPECT_FALSE(reader.poisoned()) << "prefix length " << len;
    // The remainder completes the frame — truncation was just waiting.
    reader.feed({bytes.data() + len, bytes.size() - len});
    EXPECT_TRUE(reader.next().has_value()) << "prefix length " << len;
  }
}

// -------------------------------------------------------- bit-flip fuzz --

TEST(FleetWire, EverySingleBitFlipIsRejected) {
  const auto query = make_query(200, 7);
  const auto bytes = request_frame(21, 22, query);
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto corrupted = bytes;
    corrupted[bit / 8] ^= std::byte{1} << (bit % 8);
    FrameReader reader;
    const auto frames = drain(reader, corrupted);
    EXPECT_TRUE(frames.empty()) << "flip at bit " << bit;
    EXPECT_TRUE(reader.poisoned()) << "flip at bit " << bit;
  }
}

TEST(FleetWire, RandomGarbageStreamsPoisonQuickly) {
  util::Xoshiro256 rng(0xbadc0de);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::byte> garbage(64 + trial);
    for (auto& b : garbage) {
      b = static_cast<std::byte>(rng.next() & 0xff);
    }
    FrameReader reader;
    const auto frames = drain(reader, garbage);
    EXPECT_TRUE(frames.empty());
    // A garbage stream long enough to contain a header must be caught
    // (magic alone rejects all but 1 in 2^32).
    EXPECT_TRUE(reader.poisoned());
  }
}

// ------------------------------------------------- hostile header fields --

TEST(FleetWire, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  auto bytes = request_frame(1, 1, make_query(64, 1));
  const std::uint32_t huge = kMaxPayload + 1;
  std::memcpy(bytes.data() + 24, &huge, 4);
  fix_header_crc(bytes);  // hostile but CRC-valid
  FrameReader reader;
  reader.feed({bytes.data(), kHeaderSize});
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.error(), WireError::kOversizedPayload);
  // The reader held only what was fed — a length prefix is not a
  // promise it allocates for.
  EXPECT_LE(reader.buffered(), kHeaderSize);
}

TEST(FleetWire, MaliciousLengthWithinBoundNeverCompletes) {
  // A CRC-valid header claiming kMaxPayload bytes that never arrive:
  // the reader waits (buffering only what was fed) and stays sane.
  auto bytes = request_frame(1, 1, make_query(64, 1));
  const std::uint32_t claim = kMaxPayload;
  std::memcpy(bytes.data() + 24, &claim, 4);
  fix_header_crc(bytes);
  FrameReader reader;
  reader.feed(bytes);  // whole original frame: far less than claimed
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.poisoned());
  EXPECT_EQ(reader.buffered(), bytes.size());
}

TEST(FleetWire, BadMagicBadTypeAndBadVersionAreRejected) {
  {
    auto bytes = request_frame(1, 1, make_query(64, 1));
    bytes[0] = std::byte{0x00};
    fix_header_crc(bytes);
    FrameReader reader;
    EXPECT_TRUE(drain(reader, bytes).empty());
    EXPECT_EQ(reader.error(), WireError::kBadMagic);
  }
  {
    auto bytes = request_frame(1, 1, make_query(64, 1));
    bytes[4] = std::byte{0xee};  // no such FrameType
    fix_header_crc(bytes);
    FrameReader reader;
    EXPECT_TRUE(drain(reader, bytes).empty());
    EXPECT_EQ(reader.error(), WireError::kBadType);
  }
  {
    // A version this build does not know means an unknown header length
    // — the reader must poison rather than guess where the CRC lives.
    auto bytes = request_frame(1, 1, make_query(64, 1));
    const std::uint16_t future = kMaxWireVersion + 1;
    std::memcpy(bytes.data() + 6, &future, 2);
    FrameReader reader;
    EXPECT_TRUE(drain(reader, bytes).empty());
    EXPECT_EQ(reader.error(), WireError::kBadVersion);
  }
  {
    // Flipping version 0 → 1 without supplying the wider header makes
    // the CRC land on payload bytes: caught as a header CRC mismatch.
    auto bytes = request_frame(1, 1, make_query(64, 1));
    bytes[6] = std::byte{0x01};
    FrameReader reader;
    EXPECT_TRUE(drain(reader, bytes).empty());
    EXPECT_EQ(reader.error(), WireError::kHeaderCrcMismatch);
  }
}

TEST(FleetWire, PoisonedReaderStaysPoisonedUntilReset) {
  auto bytes = request_frame(1, 1, make_query(64, 1));
  bytes[0] = std::byte{0xff};
  fix_header_crc(bytes);
  FrameReader reader;
  EXPECT_TRUE(drain(reader, bytes).empty());
  ASSERT_TRUE(reader.poisoned());
  // Feeding a perfectly valid frame afterwards must not resurrect it.
  const auto good = request_frame(2, 2, make_query(64, 2));
  EXPECT_TRUE(drain(reader, good).empty());
  EXPECT_TRUE(reader.poisoned());
  reader.reset();
  EXPECT_FALSE(reader.poisoned());
  EXPECT_EQ(drain(reader, good).size(), 1u);
}

// ------------------------------------------------------ payload parsing --

TEST(FleetWire, PredictPayloadRejectsBadDimensionAndLength) {
  hv::BinVec decoded;
  // Too short for the dimension field.
  EXPECT_FALSE(parse_predict_request(std::vector<std::byte>(3), decoded));
  // Zero dimension.
  std::vector<std::byte> zero(4, std::byte{0});
  EXPECT_FALSE(parse_predict_request(zero, decoded));
  // Dimension over the hard bound.
  std::vector<std::byte> big(4);
  const std::uint32_t dim = kMaxDimension + 1;
  std::memcpy(big.data(), &dim, 4);
  EXPECT_FALSE(parse_predict_request(big, decoded));
  // Length disagreeing with the dimension (one word short / one long).
  const auto query = make_query(128, 5);
  std::vector<std::byte> frame_bytes;
  append_predict_request(frame_bytes, 0, 0, query);
  FrameReader reader;
  const auto frames = drain(reader, frame_bytes);
  ASSERT_EQ(frames.size(), 1u);
  std::vector<std::byte> payload(frames[0].payload.begin(),
                                 frames[0].payload.end());
  auto short_payload = payload;
  short_payload.resize(payload.size() - 8);
  EXPECT_FALSE(parse_predict_request(short_payload, decoded));
  auto long_payload = payload;
  long_payload.resize(payload.size() + 8, std::byte{0});
  EXPECT_FALSE(parse_predict_request(long_payload, decoded));
}

TEST(FleetWire, PredictPayloadRejectsTailGarbage) {
  // Dimension 100 occupies 2 words with 28 tail bits that must be zero;
  // a peer setting one breaks the BinVec invariant → rejected.
  const std::size_t dim = 100;
  hv::BinVec query(dim);
  query.set(0, true);
  std::vector<std::byte> payload(4 + 2 * 8, std::byte{0});
  const std::uint32_t d32 = dim;
  std::memcpy(payload.data(), &d32, 4);
  std::memcpy(payload.data() + 4, query.words().data(), 16);
  hv::BinVec decoded;
  ASSERT_TRUE(parse_predict_request(payload, decoded));
  payload[4 + 15] = std::byte{0x80};  // highest bit of word 1 = bit 127
  EXPECT_FALSE(parse_predict_request(payload, decoded));
}

TEST(FleetWire, ResponsePayloadLengthIsExact) {
  PredictResult result;
  std::vector<std::byte> bytes;
  append_predict_response(bytes, 0, 0, result);
  FrameReader reader;
  auto frames = drain(reader, bytes);
  ASSERT_EQ(frames.size(), 1u);
  Frame frame = frames[0];
  EXPECT_TRUE(parse_predict_response(frame).has_value());
  frame.payload = frame.payload.subspan(0, frame.payload.size() - 1);
  EXPECT_FALSE(parse_predict_response(frame).has_value());
}

}  // namespace
}  // namespace robusthd::fleet::wire
