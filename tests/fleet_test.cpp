// End-to-end tests for the sharded fleet: in-process and over-TCP
// predictions must be bit-identical to a direct serve::Server on the
// same model (including the confidence double and the trusted /
// degraded / abstained flags), the degradation ladder must propagate
// over the wire, server-side failover must route around an open
// breaker, and a hostile connection must die without hurting its
// neighbours. Runs under TSan in CI.
#include "robusthd/fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "robusthd/fleet/client.hpp"
#include "robusthd/fleet/frontend.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::fleet {
namespace {

constexpr std::size_t kDim = 1500;
constexpr std::size_t kClasses = 4;

struct World {
  std::vector<hv::BinVec> queries;
  std::vector<int> labels;
  model::HdcModel model;
};

World make_world(std::uint64_t seed, std::size_t queries_per_class = 20) {
  World w;
  util::Xoshiro256 rng(seed);
  std::vector<hv::BinVec> prototypes;
  std::vector<hv::BinVec> train;
  std::vector<int> train_labels;
  for (std::size_t c = 0; c < kClasses; ++c) {
    prototypes.push_back(hv::BinVec::random(kDim, rng));
  }
  auto noisy = [&](std::size_t c) {
    auto v = prototypes[c];
    for (std::size_t d = 0; d < kDim; ++d) {
      if (rng.bernoulli(0.04)) v.flip(d);
    }
    return v;
  };
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (int i = 0; i < 15; ++i) {
      train.push_back(noisy(c));
      train_labels.push_back(static_cast<int>(c));
    }
    for (std::size_t i = 0; i < queries_per_class; ++i) {
      w.queries.push_back(noisy(c));
      w.labels.push_back(static_cast<int>(c));
    }
  }
  w.model = model::HdcModel::train(train, train_labels, kClasses, {});
  return w;
}

/// N same-model shards with deterministic scoring (no recovery).
Fleet make_fleet(const World& w, std::size_t shards,
                 std::size_t queue_capacity = 256) {
  std::vector<model::HdcModel> models;
  FleetConfig config;
  for (std::size_t i = 0; i < shards; ++i) {
    models.push_back(w.model);
    ShardConfig shard;
    shard.server.worker_threads = 2;
    shard.server.queue_capacity = queue_capacity;
    shard.server.enable_recovery = false;
    config.shards.push_back(std::move(shard));
  }
  return Fleet(std::move(models), std::move(config));
}

void set_nonblocking_fd(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void send_prefix(int fd, const std::vector<std::byte>& bytes,
                 std::size_t limit) {
  std::size_t off = 0;
  const std::size_t total = std::min(bytes.size(), limit);
  while (off < total) {
    const auto n =
        ::send(fd, bytes.data() + off, total - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      (void)::poll(&pfd, 1, 100);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;
  }
}

/// Minimal wire-speaking TCP server for client fault tests: parses
/// frames off every connection and hands them to the test's handler,
/// which sends whatever reply it wants. Handler returns false to close
/// the connection abortively (RST) right after its (possibly partial)
/// reply — the "server died mid-response" case.
class FakeWireServer {
 public:
  /// (connection fd, request frame, 1-based request ordinal across all
  /// connections) -> keep the connection open?
  using Handler = std::function<bool(int, const wire::Frame&, std::uint64_t)>;

  explicit FakeWireServer(Handler handler) : handler_(std::move(handler)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    (void)::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    (void)::listen(listen_fd_, 16);
    socklen_t len = sizeof addr;
    (void)::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    set_nonblocking_fd(listen_fd_);
    thread_ = std::thread([this] { run(); });
  }

  ~FakeWireServer() {
    running_.store(false, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
    ::close(listen_fd_);
  }

  std::uint16_t port() const { return port_; }

 private:
  struct Conn {
    int fd = -1;
    wire::FrameReader reader;
  };

  static void rst_close(int fd) {
    linger lin{};
    lin.l_onoff = 1;
    lin.l_linger = 0;
    (void)::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof lin);
    ::close(fd);
  }

  void run() {
    std::vector<Conn> conns;
    std::byte buf[64 * 1024];
    while (running_.load(std::memory_order_acquire)) {
      std::vector<pollfd> pfds;
      pfds.push_back({listen_fd_, POLLIN, 0});
      for (const auto& conn : conns) pfds.push_back({conn.fd, POLLIN, 0});
      (void)::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 10);
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking_fd(fd);
        conns.push_back({fd, wire::FrameReader()});
      }
      for (std::size_t i = 0; i < conns.size();) {
        auto& conn = conns[i];
        bool dead = false;
        for (;;) {
          const auto n = ::recv(conn.fd, buf, sizeof buf, 0);
          if (n > 0) {
            conn.reader.feed({buf, static_cast<std::size_t>(n)});
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          dead = true;  // peer closed or hard error
          break;
        }
        while (!dead) {
          const auto frame = conn.reader.next();
          if (!frame) break;
          const auto ordinal =
              count_.fetch_add(1, std::memory_order_relaxed) + 1;
          if (!handler_(conn.fd, *frame, ordinal)) {
            rst_close(conn.fd);
            conn.fd = -1;
            dead = true;
          }
        }
        if (dead || conn.reader.poisoned()) {
          if (conn.fd >= 0) ::close(conn.fd);
          conns[i] = std::move(conns.back());
          conns.pop_back();
          continue;
        }
        ++i;
      }
    }
    for (auto& conn : conns) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
  }

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{true};
  std::atomic<std::uint64_t> count_{0};
};

/// Canned healthy predict reply.
bool reply_predict(int fd, const wire::Frame& frame, std::int32_t predicted) {
  wire::PredictResult result;
  result.predicted = predicted;
  result.confidence = 0.75;
  result.trusted = true;
  result.model_version = 1;
  std::vector<std::byte> out;
  wire::append_predict_response(out, frame.tenant_id, frame.request_id,
                                result);
  send_prefix(fd, out, out.size());
  return true;
}

void expect_identical(const serve::Response& fleet_r,
                      const serve::Response& direct_r, std::size_t i) {
  EXPECT_EQ(fleet_r.predicted, direct_r.predicted) << "query " << i;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(fleet_r.confidence),
            std::bit_cast<std::uint64_t>(direct_r.confidence))
      << "query " << i;
  EXPECT_EQ(fleet_r.trusted, direct_r.trusted) << "query " << i;
  EXPECT_EQ(fleet_r.degraded, direct_r.degraded) << "query " << i;
  EXPECT_EQ(fleet_r.abstained, direct_r.abstained) << "query " << i;
  EXPECT_EQ(fleet_r.model_version, direct_r.model_version) << "query " << i;
}

// ----------------------------------------------------------- in-process --

TEST(Fleet, InProcessPredictionsBitIdenticalToDirectServer) {
  const auto w = make_world(0x11);
  auto fleet = make_fleet(w, 3);

  serve::ServerConfig direct_config;
  direct_config.worker_threads = 2;
  direct_config.enable_recovery = false;
  serve::Server direct(w.model, direct_config);

  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    auto fleet_future = fleet.submit(/*tenant_id=*/i, w.queries[i]);
    auto direct_future = direct.submit(w.queries[i]);
    expect_identical(fleet_future.get(), direct_future.get(), i);
  }
  const auto stats = fleet.stats();
  EXPECT_EQ(stats.completed, w.queries.size());
  EXPECT_EQ(stats.failovers, 0u);
  fleet.shutdown();
  direct.shutdown();
}

TEST(Fleet, TenantsSpreadAcrossShardsAndRoutingIsStable) {
  const auto w = make_world(0x22);
  auto fleet = make_fleet(w, 4);
  std::vector<std::size_t> per_shard(4, 0);
  for (std::uint64_t t = 0; t < 2000; ++t) {
    const auto d = fleet.route(t);
    EXPECT_EQ(d.shard, fleet.router().route(t));
    ++per_shard[d.shard];
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(per_shard[s], 0u) << "shard " << s << " owns no tenants";
  }
  fleet.shutdown();
}

TEST(Fleet, RejectsMixedDimensions) {
  const auto a = make_world(0x31);
  util::Xoshiro256 rng(1);
  std::vector<hv::BinVec> train;
  std::vector<int> labels;
  for (int i = 0; i < 8; ++i) {
    train.push_back(hv::BinVec::random(kDim / 2, rng));
    labels.push_back(i % 2);
  }
  auto other = model::HdcModel::train(train, labels, 2, {});
  std::vector<model::HdcModel> models;
  models.push_back(a.model);
  models.push_back(std::move(other));
  EXPECT_THROW(Fleet(std::move(models)), std::invalid_argument);
}

// ------------------------------------------------------------- over TCP --

TEST(Fleet, TcpPredictionsBitIdenticalToDirectServer) {
  const auto w = make_world(0x33);
  auto fleet = make_fleet(w, 2);
  Frontend frontend(fleet);
  frontend.start();
  const auto ports = frontend.ports();
  ASSERT_EQ(ports.size(), 2u);

  serve::ServerConfig direct_config;
  direct_config.worker_threads = 2;
  direct_config.enable_recovery = false;
  serve::Server direct(w.model, direct_config);

  std::vector<Endpoint> endpoints;
  std::vector<std::string> groups;
  for (const auto port : ports) {
    endpoints.push_back({"127.0.0.1", port});
    groups.push_back("default");
  }
  Client client(std::move(endpoints), std::move(groups));

  for (std::size_t i = 0; i < w.queries.size(); ++i) {
    const auto over_wire = client.predict(/*tenant_id=*/i, w.queries[i]);
    ASSERT_TRUE(over_wire.ok) << over_wire.error_message;
    const auto direct_r = direct.submit(w.queries[i]).get();
    EXPECT_EQ(over_wire.predicted, direct_r.predicted) << "query " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(over_wire.confidence),
              std::bit_cast<std::uint64_t>(direct_r.confidence))
        << "query " << i;
    EXPECT_EQ(over_wire.trusted, direct_r.trusted) << "query " << i;
    EXPECT_EQ(over_wire.degraded, direct_r.degraded) << "query " << i;
    EXPECT_EQ(over_wire.abstained, direct_r.abstained) << "query " << i;
    EXPECT_EQ(over_wire.model_version, direct_r.model_version)
        << "query " << i;
    // Client-side routing agreed with the fleet's router.
    EXPECT_EQ(over_wire.shard, fleet.router().route(i)) << "query " << i;
    EXPECT_FALSE(over_wire.failover);
  }
  EXPECT_EQ(client.counters().responses, w.queries.size());
  EXPECT_EQ(client.counters().transport_errors, 0u);

  frontend.stop();
  fleet.shutdown();
  direct.shutdown();
}

TEST(Fleet, PingAndDimensionMismatchOverTcp) {
  const auto w = make_world(0x44);
  auto fleet = make_fleet(w, 1);
  Frontend frontend(fleet);
  frontend.start();
  Client client({{"127.0.0.1", frontend.ports()[0]}}, {"default"});

  EXPECT_TRUE(client.ping(0));

  util::Xoshiro256 rng(3);
  const auto wrong = hv::BinVec::random(kDim + 64, rng);
  const auto response = client.predict(0, wrong);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, wire::ErrorCode::kDimensionMismatch);
  // The connection survives a well-framed bad request.
  const auto good = client.predict(0, w.queries[0]);
  EXPECT_TRUE(good.ok);
  EXPECT_EQ(frontend.counters().dimension_rejections, 1u);

  frontend.stop();
  fleet.shutdown();
}

TEST(Fleet, MalformedConnectionIsClosedWithoutCollateralDamage) {
  const auto w = make_world(0x55);
  auto fleet = make_fleet(w, 1);
  Frontend frontend(fleet);
  frontend.start();
  const auto port = frontend.ports()[0];

  // A healthy client first.
  Client client({{"127.0.0.1", port}}, {"default"});
  ASSERT_TRUE(client.predict(1, w.queries[0]).ok);

  // Raw garbage on a second connection: the frontend must poison and
  // close it (recv eventually returns 0) without touching the client.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  std::vector<char> garbage(4096, 'z');
  ASSERT_GT(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL), 0);
  char buf[64];
  const auto n = ::recv(fd, buf, sizeof buf, 0);  // blocks until close
  EXPECT_LE(n, 0);
  ::close(fd);

  EXPECT_GE(frontend.counters().protocol_errors, 1u);
  // The well-behaved connection still works.
  EXPECT_TRUE(client.predict(2, w.queries[1]).ok);

  frontend.stop();
  fleet.shutdown();
}

// ------------------------------------------- degradation ladder, end-to-end

/// Shard config with a manually driven sentinel (period 0) whose canary
/// labels are deliberately wrong, so one run_round() trips the breaker
/// and it stays open (reload cannot fix mislabeled canaries).
ShardConfig breaker_trap_shard(const World& w) {
  ShardConfig shard;
  shard.server.worker_threads = 1;
  shard.server.enable_recovery = false;
  shard.server.sentinel.enabled = true;
  shard.server.sentinel.period = std::chrono::milliseconds(0);
  shard.server.sentinel.breaker_floor = 0.9;
  shard.server.sentinel.breaker_window = 1;
  shard.server.sentinel.breaker_reload_retries = 1;
  shard.server.sentinel.breaker_backoff = std::chrono::milliseconds(1);
  shard.server.canaries.assign(w.queries.begin(), w.queries.begin() + 20);
  shard.server.canary_labels.assign(20, -7);  // never correct
  return shard;
}

TEST(Fleet, OpenBreakerAbstainsOverTheWireOnSingleShard) {
  const auto w = make_world(0x66);
  std::vector<model::HdcModel> models;
  models.push_back(w.model);
  FleetConfig config;
  config.shards.push_back(breaker_trap_shard(w));
  Fleet fleet(std::move(models), std::move(config));

  fleet.shard(0).server().sentinel()->run_round();  // trip
  ASSERT_TRUE(fleet.shard(0).server().breaker_open());
  EXPECT_FALSE(fleet.shard(0).healthy());

  Frontend frontend(fleet);
  frontend.start();
  Client client({{"127.0.0.1", frontend.ports()[0]}}, {"default"});

  const auto response = client.predict(5, w.queries[0]);
  ASSERT_TRUE(response.ok);
  EXPECT_TRUE(response.abstained);
  EXPECT_EQ(response.predicted, -1);

  // The client marked the shard unhealthy; with no same-group failover
  // the router still targets it (all_unhealthy) and keeps shedding.
  const auto again = client.predict(5, w.queries[0]);
  ASSERT_TRUE(again.ok);
  EXPECT_TRUE(again.abstained);

  frontend.stop();
  fleet.shutdown();
}

TEST(Fleet, ServerSideFailoverRoutesAroundOpenBreaker) {
  const auto w = make_world(0x77);
  std::vector<model::HdcModel> models;
  models.push_back(w.model);
  models.push_back(w.model);
  FleetConfig config;
  config.shards.push_back(breaker_trap_shard(w));
  ShardConfig healthy;
  healthy.server.worker_threads = 1;
  healthy.server.enable_recovery = false;
  config.shards.push_back(std::move(healthy));
  Fleet fleet(std::move(models), std::move(config));

  fleet.shard(0).server().sentinel()->run_round();
  ASSERT_TRUE(fleet.shard(0).server().breaker_open());

  // Find a tenant whose primary is the tripped shard.
  std::uint64_t victim = 0;
  while (fleet.router().route(victim) != 0) ++victim;

  const auto d = fleet.route(victim);
  EXPECT_TRUE(d.failover);
  EXPECT_EQ(d.shard, 1u);

  // In-process: the fleet answers from the healthy twin, not abstained.
  auto response = fleet.submit(victim, w.queries[0]).get();
  EXPECT_FALSE(response.abstained);
  EXPECT_GE(response.predicted, 0);

  // Over the wire, even when the client connects to the tripped shard's
  // own port, the server-side router rescues the request.
  Frontend frontend(fleet);
  frontend.start();
  {
    std::vector<Endpoint> only_tripped{{"127.0.0.1", frontend.ports()[0]}};
    Client client(std::move(only_tripped), {"default"});
    const auto wire_response = client.predict(victim, w.queries[0]);
    ASSERT_TRUE(wire_response.ok) << wire_response.error_message;
    EXPECT_FALSE(wire_response.abstained);
    EXPECT_EQ(wire_response.predicted, response.predicted);
  }
  EXPECT_GE(fleet.stats().failovers, 2u);

  // Recovery: close the breaker path by healing the router view — once
  // the shard reports healthy again the original assignment returns.
  frontend.stop();
  fleet.shutdown();
}

TEST(Fleet, QuarantineDegradedFlagPropagatesOverTheWire) {
  const auto w = make_world(0x88);
  std::vector<model::HdcModel> models;
  models.push_back(w.model);
  FleetConfig config;
  ShardConfig shard;
  shard.server.worker_threads = 1;
  shard.server.enable_recovery = false;  // direct-publish fault injection
  shard.server.sentinel.enabled = true;
  shard.server.sentinel.period = std::chrono::milliseconds(0);
  // Light random damage drifts every chunk past the threshold; the 0.5
  // quarantine cap keeps the worst half (same recipe as resilience_test).
  shard.server.sentinel.chunk_drift_threshold = 0.01;
  shard.server.sentinel.bad_streak = 1;
  shard.server.sentinel.good_streak = 1000;   // hold quarantine for the test
  shard.server.sentinel.breaker_floor = 0.0;  // never trip in this test
  shard.server.canaries.assign(w.queries.begin(), w.queries.begin() + 20);
  shard.server.canary_labels.assign(w.labels.begin(), w.labels.begin() + 20);
  config.shards.push_back(std::move(shard));
  Fleet fleet(std::move(models), std::move(config));

  fleet.shard(0).server().inject_faults(0.05, fault::AttackMode::kRandom, 7);
  fleet.shard(0).server().sentinel()->run_round();
  ASSERT_GT(fleet.shard(0).server().stats().quarantined_chunks, 0u);

  Frontend frontend(fleet);
  frontend.start();
  Client client({{"127.0.0.1", frontend.ports()[0]}}, {"default"});
  const auto response = client.predict(3, w.queries[0]);
  ASSERT_TRUE(response.ok) << response.error_message;
  EXPECT_TRUE(response.degraded);
  EXPECT_FALSE(response.abstained);
  EXPECT_GE(response.predicted, 0);

  const auto stats = fleet.stats();
  EXPECT_GT(stats.shards[0].quarantined_chunks, 0u);
  EXPECT_GE(stats.degraded_responses, 1u);

  frontend.stop();
  fleet.shutdown();
}

// ------------------------------------------- deadlines and admission --

TEST(Fleet, TrySubmitShedsPastDeadlineAndAcceptsLiveOne) {
  const auto w = make_world(0x99);
  auto fleet = make_fleet(w, 1);

  SubmitReject reject = SubmitReject::kNone;
  const auto dead = fleet.try_submit(
      0, w.queries[0],
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1),
      &reject);
  EXPECT_FALSE(dead.has_value());
  EXPECT_EQ(reject, SubmitReject::kDeadline);
  EXPECT_EQ(fleet.stats().deadline_sheds, 1u);

  auto live = fleet.try_submit(
      0, w.queries[0],
      std::chrono::steady_clock::now() + std::chrono::seconds(5), &reject);
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(reject, SubmitReject::kNone);
  const auto response = live->future.get();
  EXPECT_FALSE(response.expired);
  EXPECT_GE(response.predicted, 0);

  fleet.shutdown();
}

TEST(Fleet, LegacyClientWithoutDeadlinesStillServed) {
  const auto w = make_world(0xaa);
  auto fleet = make_fleet(w, 1);
  Frontend frontend(fleet);
  frontend.start();

  ClientConfig config;
  config.send_deadline = false;  // emits version-0 frames, bit for bit
  Client client({{"127.0.0.1", frontend.ports()[0]}}, {"default"},
                std::move(config));
  const auto response = client.predict(0, w.queries[0]);
  ASSERT_TRUE(response.ok) << response.error_message;
  EXPECT_GE(response.predicted, 0);
  EXPECT_EQ(frontend.counters().deadline_sheds, 0u);

  frontend.stop();
  fleet.shutdown();
}

TEST(Fleet, SlowlorisPartialFrameIsReaped) {
  const auto w = make_world(0xbb);
  auto fleet = make_fleet(w, 1);
  FrontendConfig fc;
  fc.read_deadline = std::chrono::milliseconds(50);
  Frontend frontend(fleet, fc);
  frontend.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(frontend.ports()[0]);
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  // First 8 bytes of a valid header (magic + type + flags + version),
  // then silence: a classic slowloris holding a torn frame open.
  std::array<unsigned char, 8> partial{0x52, 0x48, 0x46, 0x31, 1, 0, 0, 0};
  ASSERT_GT(::send(fd, partial.data(), partial.size(), MSG_NOSIGNAL), 0);
  timeval tv{2, 0};  // bound the blocking recv so a regression fails fast
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  char buf[16];
  const auto n = ::recv(fd, buf, sizeof buf, 0);
  EXPECT_LE(n, 0);  // the reaper closed us, no bytes arrived
  ::close(fd);
  EXPECT_GE(frontend.counters().reaped_connections, 1u);

  frontend.stop();
  fleet.shutdown();
}

// ------------------------------------------------ client retry policy --

TEST(Fleet, BusyErrorFrameIsRetriedNotTerminal) {
  const auto w = make_world(0xcc);
  // Regression: wire.hpp documents kBusy as "retry later", but the
  // client used to treat any error frame as terminal.
  FakeWireServer server([](int fd, const wire::Frame& frame,
                           std::uint64_t ordinal) {
    if (ordinal == 1) {
      std::vector<std::byte> out;
      wire::append_error(out, frame.tenant_id, frame.request_id,
                         wire::ErrorCode::kBusy, "queue full, retry later");
      send_prefix(fd, out, out.size());
      return true;
    }
    return reply_predict(fd, frame, 2);
  });

  ClientConfig config;
  config.retry.initial_backoff = std::chrono::milliseconds(1);
  Client client({{"127.0.0.1", server.port()}}, {"default"},
                std::move(config));
  const auto response = client.predict(7, w.queries[0]);
  ASSERT_TRUE(response.ok) << response.error_message;
  EXPECT_EQ(response.predicted, 2);
  EXPECT_EQ(response.attempts, 2u);
  EXPECT_EQ(client.counters().retries, 1u);
  EXPECT_EQ(client.counters().server_errors, 1u);
  // kBusy is backpressure, not sickness: the connection survives and
  // the shard is not marked unhealthy.
  EXPECT_EQ(client.counters().reconnects, 0u);
  EXPECT_TRUE(client.router().healthy(0));
}

TEST(Fleet, ConnectTimeoutFailsFastOnSaturatedBacklog) {
  // A listener that never accepts, with its accept queue pre-filled, so
  // further SYNs are dropped — the classic blackholed-endpoint shape.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof addr),
            0);
  ASSERT_EQ(::listen(listen_fd, 0), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  std::vector<int> fillers;
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    set_nonblocking_fd(fd);
    (void)::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    fillers.push_back(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto w = make_world(0xdd, /*queries_per_class=*/1);
  ClientConfig config;
  config.connect_timeout = std::chrono::milliseconds(150);
  config.response_timeout = std::chrono::milliseconds(1000);
  config.retry.max_attempts = 1;
  Client client({{"127.0.0.1", ntohs(addr.sin_port)}}, {"default"},
                std::move(config));
  const auto t0 = std::chrono::steady_clock::now();
  const auto response = client.predict(0, w.queries[0]);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(response.ok);
  EXPECT_GE(client.counters().connect_timeouts, 1u);
  EXPECT_GE(client.counters().transport_errors, 1u);
  // Two bounded connect attempts (route + one re-route), not a
  // kernel-default multi-minute hang.
  EXPECT_LT(elapsed, std::chrono::milliseconds(900));

  for (const int fd : fillers) ::close(fd);
  ::close(listen_fd);
}

TEST(Fleet, StalledShardTimesOutAndFailsOver) {
  const auto w = make_world(0xee, /*queries_per_class=*/2);
  // Shard 0 from the client's view: accepts and reads, never answers.
  FakeWireServer stall([](int, const wire::Frame&, std::uint64_t) {
    return true;
  });
  // Shard 1: a real single-shard fleet behind a frontend.
  auto fleet = make_fleet(w, 1);
  Frontend frontend(fleet);
  frontend.start();

  ClientConfig config;
  config.retry.attempt_timeout = std::chrono::milliseconds(100);
  config.retry.initial_backoff = std::chrono::milliseconds(1);
  config.response_timeout = std::chrono::milliseconds(2000);
  Client client(
      {{"127.0.0.1", stall.port()}, {"127.0.0.1", frontend.ports()[0]}},
      {"default", "default"}, std::move(config));

  // A tenant whose primary is the stalled endpoint.
  Router reference({"default", "default"}, RouterConfig{});
  std::uint64_t victim = 0;
  while (reference.route(victim) != 0) ++victim;

  const auto response = client.predict(victim, w.queries[0]);
  ASSERT_TRUE(response.ok) << response.error_message;
  EXPECT_EQ(response.shard, 1u);
  EXPECT_EQ(response.attempts, 2u);
  EXPECT_TRUE(response.failover);
  EXPECT_GE(client.counters().transport_errors, 1u);
  EXPECT_EQ(client.counters().retries, 1u);
  EXPECT_FALSE(client.router().healthy(0));

  frontend.stop();
  fleet.shutdown();
}

TEST(Fleet, MidResponseResetIsRetried) {
  const auto w = make_world(0xff, /*queries_per_class=*/2);
  // First request: 12 bytes of a valid response, then a hard RST — a
  // server dying mid-write. Second request (fresh connection): answers.
  FakeWireServer server([](int fd, const wire::Frame& frame,
                           std::uint64_t ordinal) {
    if (ordinal == 1) {
      wire::PredictResult result;
      result.predicted = 3;
      std::vector<std::byte> out;
      wire::append_predict_response(out, frame.tenant_id, frame.request_id,
                                    result);
      send_prefix(fd, out, 12);
      return false;  // RST with a torn frame on the wire
    }
    return reply_predict(fd, frame, 3);
  });

  ClientConfig config;
  config.retry.initial_backoff = std::chrono::milliseconds(1);
  config.unhealthy_cooldown = std::chrono::milliseconds(1);
  Client client({{"127.0.0.1", server.port()}}, {"default"},
                std::move(config));
  const auto response = client.predict(9, w.queries[0]);
  ASSERT_TRUE(response.ok) << response.error_message;
  EXPECT_EQ(response.predicted, 3);
  EXPECT_EQ(response.attempts, 2u);
  EXPECT_GE(client.counters().transport_errors, 1u);
  EXPECT_GE(client.counters().reconnects, 1u);
  // The torn frame never surfaced as data: exactly one (valid) response.
  EXPECT_EQ(client.counters().responses, 1u);
}

TEST(Fleet, HedgedRequestRescuesSlowPrimary) {
  const auto w = make_world(0x101, /*queries_per_class=*/2);
  FakeWireServer stall([](int, const wire::Frame&, std::uint64_t) {
    return true;
  });
  auto fleet = make_fleet(w, 1);
  Frontend frontend(fleet);
  frontend.start();

  ClientConfig config;
  config.hedge.enabled = true;
  config.hedge.delay = std::chrono::milliseconds(10);
  config.retry.max_attempts = 1;  // isolate hedging from retries
  config.response_timeout = std::chrono::milliseconds(2000);
  Client client(
      {{"127.0.0.1", stall.port()}, {"127.0.0.1", frontend.ports()[0]}},
      {"default", "default"}, std::move(config));

  Router reference({"default", "default"}, RouterConfig{});
  std::uint64_t victim = 0;
  while (reference.route(victim) != 0) ++victim;

  const auto response = client.predict(victim, w.queries[0]);
  ASSERT_TRUE(response.ok) << response.error_message;
  EXPECT_TRUE(response.hedged);
  EXPECT_TRUE(response.hedge_won);
  EXPECT_EQ(response.shard, 1u);
  EXPECT_EQ(response.attempts, 1u);
  EXPECT_EQ(client.counters().hedged_requests, 1u);
  EXPECT_EQ(client.counters().hedge_wins, 1u);
  EXPECT_EQ(client.counters().retries, 0u);

  frontend.stop();
  fleet.shutdown();
}

}  // namespace
}  // namespace robusthd::fleet
