// Tests for dataset specs, normalisation and the synthetic generator.
#include "robusthd/data/dataset.hpp"
#include "robusthd/data/synthetic.hpp"

#include <gtest/gtest.h>

#include <set>

namespace robusthd::data {
namespace {

TEST(DatasetSpecs, MatchPaperTable2) {
  const auto specs = paper_datasets();
  ASSERT_EQ(specs.size(), 6u);
  const auto& mnist = dataset_by_name("MNIST");
  EXPECT_EQ(mnist.feature_count, 784u);
  EXPECT_EQ(mnist.num_classes, 10u);
  EXPECT_EQ(mnist.train_size, 60000u);
  EXPECT_EQ(mnist.test_size, 10000u);
  const auto& pamap = dataset_by_name("PAMAP");
  EXPECT_EQ(pamap.feature_count, 75u);
  EXPECT_EQ(pamap.num_classes, 5u);
  EXPECT_EQ(pamap.train_size, 611142u);
  const auto& isolet = dataset_by_name("ISOLET");
  EXPECT_EQ(isolet.num_classes, 26u);
}

TEST(DatasetSpecs, UnknownNameThrows) {
  EXPECT_THROW(dataset_by_name("NOPE"), std::out_of_range);
}

TEST(DatasetSpecs, ScalingCapsSizes) {
  const auto scaled_spec = scaled(dataset_by_name("FACE"), 1000, 200);
  EXPECT_EQ(scaled_spec.train_size, 1000u);
  EXPECT_EQ(scaled_spec.test_size, 200u);
  // Small datasets are untouched.
  const auto har = scaled(dataset_by_name("UCIHAR"), 100000, 100000);
  EXPECT_EQ(har.train_size, 6213u);
}

TEST(Synthetic, ShapesMatchSpec) {
  const auto spec = scaled(dataset_by_name("UCIHAR"), 300, 100);
  const auto split = make_synthetic(spec);
  EXPECT_EQ(split.train.size(), 300u);
  EXPECT_EQ(split.test.size(), 100u);
  EXPECT_EQ(split.train.feature_count(), 561u);
  EXPECT_EQ(split.train.num_classes, 12u);
  EXPECT_EQ(split.train.labels.size(), 300u);
}

TEST(Synthetic, DeterministicInSeed) {
  const auto spec = scaled(dataset_by_name("PAMAP"), 100, 50);
  const auto a = make_synthetic(spec, 99);
  const auto b = make_synthetic(spec, 99);
  const auto c = make_synthetic(spec, 100);
  EXPECT_EQ(a.train.labels, b.train.labels);
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    for (std::size_t f = 0; f < a.train.feature_count(); ++f) {
      ASSERT_FLOAT_EQ(a.train.features(i, f), b.train.features(i, f));
    }
  }
  EXPECT_NE(a.train.labels, c.train.labels);
}

TEST(Synthetic, FeaturesNormalisedToUnitRange) {
  const auto spec = scaled(dataset_by_name("PECAN"), 400, 100);
  const auto split = make_synthetic(spec);
  for (const auto& d : {split.train, split.test}) {
    for (std::size_t i = 0; i < d.size(); ++i) {
      for (std::size_t f = 0; f < d.feature_count(); ++f) {
        ASSERT_GE(d.features(i, f), 0.0f);
        ASSERT_LE(d.features(i, f), 1.0f);
      }
    }
  }
}

TEST(Synthetic, AllClassesPresent) {
  const auto spec = scaled(dataset_by_name("ISOLET"), 800, 200);
  const auto split = make_synthetic(spec);
  std::set<int> seen(split.train.labels.begin(), split.train.labels.end());
  EXPECT_EQ(seen.size(), 26u);
  for (const auto label : split.train.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 26);
  }
}

TEST(Synthetic, ClassesAreSeparable) {
  // Within-class feature distance should be clearly below cross-class
  // distance on average — the generator's entire purpose.
  const auto spec = scaled(dataset_by_name("UCIHAR"), 400, 100);
  const auto split = make_synthetic(spec);
  double same = 0.0, diff = 0.0;
  std::size_t same_n = 0, diff_n = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = i + 1; j < 100; ++j) {
      double dist = 0.0;
      for (std::size_t f = 0; f < split.train.feature_count(); ++f) {
        const double d =
            split.train.features(i, f) - split.train.features(j, f);
        dist += d * d;
      }
      if (split.train.labels[i] == split.train.labels[j]) {
        same += dist;
        ++same_n;
      } else {
        diff += dist;
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 0u);
  ASSERT_GT(diff_n, 0u);
  EXPECT_LT(same / same_n, 0.8 * diff / diff_n);
}

TEST(Synthetic, HarderSpecsHaveMoreConfusers) {
  // PECAN (separability 0.9) should contain more boundary samples than
  // FACE (1.8); proxy: nearest-neighbour label disagreement.
  SynthConfig cfg;
  auto easy_spec = scaled(dataset_by_name("FACE"), 300, 50);
  auto hard_spec = scaled(dataset_by_name("PECAN"), 300, 50);
  // Equalise everything except separability-driven confuser rates.
  easy_spec.feature_count = hard_spec.feature_count = 100;
  easy_spec.num_classes = hard_spec.num_classes = 3;
  const auto easy = make_synthetic(easy_spec, cfg);
  const auto hard = make_synthetic(hard_spec, cfg);
  (void)easy;
  (void)hard;
  // Structural check only: both generated fine with modified specs.
  EXPECT_EQ(easy.train.feature_count(), 100u);
  EXPECT_EQ(hard.train.feature_count(), 100u);
}

TEST(NormalizeMinmax, AppliesTrainStatsToTest) {
  Split split;
  split.train.features = util::Matrix(3, 1);
  split.train.features(0, 0) = 0.0f;
  split.train.features(1, 0) = 5.0f;
  split.train.features(2, 0) = 10.0f;
  split.train.labels = {0, 0, 0};
  split.train.num_classes = 1;
  split.test.features = util::Matrix(2, 1);
  split.test.features(0, 0) = 5.0f;
  split.test.features(1, 0) = 20.0f;  // beyond train range -> clamped
  split.test.labels = {0, 0};
  split.test.num_classes = 1;
  normalize_minmax(split);
  EXPECT_NEAR(split.test.features(0, 0), 0.5f, 0.05f);
  EXPECT_FLOAT_EQ(split.test.features(1, 0), 1.0f);
}

}  // namespace
}  // namespace robusthd::data
