// Tests for the RobustHD recovery engine: gating, detection, substitution,
// stability safeguards, and end-to-end healing on a controlled geometry.
#include "robusthd/model/recovery.hpp"

#include <gtest/gtest.h>

#include "robusthd/fault/injector.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::model {
namespace {

constexpr std::size_t kDim = 4000;
constexpr std::size_t kClasses = 6;

/// Tight-cluster toy geometry: queries agree with their prototype on ~96%
/// of dimensions (the regime where substitution is meaningful).
struct World {
  std::vector<hv::BinVec> prototypes;
  std::vector<hv::BinVec> queries;
  std::vector<int> labels;
  HdcModel model;
};

World make_world(std::uint64_t seed) {
  World w;
  util::Xoshiro256 rng(seed);
  std::vector<hv::BinVec> train;
  std::vector<int> train_labels;
  for (std::size_t c = 0; c < kClasses; ++c) {
    w.prototypes.push_back(hv::BinVec::random(kDim, rng));
  }
  auto noisy = [&](std::size_t c, double p) {
    auto v = w.prototypes[c];
    for (std::size_t d = 0; d < kDim; ++d) {
      if (rng.bernoulli(p)) v.flip(d);
    }
    return v;
  };
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (int i = 0; i < 20; ++i) {
      train.push_back(noisy(c, 0.04));
      train_labels.push_back(static_cast<int>(c));
    }
    for (int i = 0; i < 40; ++i) {
      w.queries.push_back(noisy(c, 0.04));
      w.labels.push_back(static_cast<int>(c));
    }
  }
  w.model = HdcModel::train(train, train_labels, kClasses, {});
  return w;
}

TEST(RecoveryEngine, RejectsMultibitModels) {
  util::Xoshiro256 rng(1);
  std::vector<hv::BinVec> train{hv::BinVec::random(256, rng),
                                hv::BinVec::random(256, rng)};
  std::vector<int> labels{0, 1};
  HdcConfig config;
  config.precision_bits = 2;
  auto model = HdcModel::train(train, labels, 2, config);
  EXPECT_THROW(RecoveryEngine(model, {}), std::invalid_argument);
}

TEST(RecoveryEngine, RejectsBadChunkCounts) {
  util::Xoshiro256 rng(2);
  std::vector<hv::BinVec> train{hv::BinVec::random(256, rng),
                                hv::BinVec::random(256, rng)};
  std::vector<int> labels{0, 1};
  auto model = HdcModel::train(train, labels, 2, {});
  RecoveryConfig zero;
  zero.chunks = 0;
  EXPECT_THROW(RecoveryEngine(model, zero), std::invalid_argument);
  RecoveryConfig huge;
  huge.chunks = 10000;
  EXPECT_THROW(RecoveryEngine(model, huge), std::invalid_argument);
}

TEST(RecoveryEngine, ChunkRangesTileTheDimension) {
  auto world = make_world(3);
  RecoveryConfig config;
  config.chunks = 7;  // does not divide kDim
  RecoveryEngine engine(world.model, config);
  std::size_t covered = 0;
  std::size_t prev_end = 0;
  for (std::size_t c = 0; c < 7; ++c) {
    const auto [begin, end] = engine.chunk_range(c);
    EXPECT_EQ(begin, prev_end);
    EXPECT_GT(end, begin);
    covered += end - begin;
    prev_end = end;
  }
  EXPECT_EQ(covered, kDim);
}

TEST(RecoveryEngine, HealthyModelIsLeftAlone) {
  auto world = make_world(4);
  const auto snapshot = world.model;
  RecoveryEngine engine(world.model, {});
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (const auto& q : world.queries) engine.observe(q);
  }
  // A clean model must not accumulate meaningful rewrites.
  EXPECT_LT(engine.total_substituted_bits(), kDim / 50);
  EXPECT_GE(world.model.evaluate(world.queries, world.labels),
            snapshot.evaluate(world.queries, world.labels) - 0.01);
}

TEST(RecoveryEngine, ObserveReportsPrediction) {
  auto world = make_world(5);
  RecoveryEngine engine(world.model, {});
  // Warm the per-class statistics first.
  for (const auto& q : world.queries) engine.observe(q);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto obs = engine.observe(world.queries[i]);
    EXPECT_EQ(obs.predicted, world.labels[i]);
    EXPECT_GT(obs.confidence, 0.5);
  }
}

TEST(RecoveryEngine, RepairsClusteredDamage) {
  auto world = make_world(6);
  const auto clean_model = world.model;  // pre-attack snapshot
  const double clean = world.model.evaluate(world.queries, world.labels);
  util::Xoshiro256 rng(7);
  auto regions = world.model.memory_regions();
  fault::BitFlipInjector::inject(regions, 0.20,
                                 fault::AttackMode::kClustered, rng);
  const auto attacked_model = world.model;  // snapshot for comparison
  // Generous repair throughput: this test verifies that substitution
  // genuinely regenerates damaged planes, not the default conservatism.
  RecoveryConfig generous;
  generous.max_updates_per_chunk = 0;
  generous.repair_balance_slack = 4;
  generous.max_total_substitution_fraction = 0.5;
  RecoveryEngine engine(world.model, generous);
  for (int epoch = 0; epoch < 25; ++epoch) {
    for (const auto& q : world.queries) engine.observe(q);
  }
  EXPECT_GT(engine.total_substituted_bits(), 0u);
  // Bit-level agreement with the clean *trained* planes improved
  // (substitution regenerates what training stored, not the latent
  // generative prototypes).
  double before = 0.0, after = 0.0;
  for (std::size_t c = 0; c < kClasses; ++c) {
    before += hv::similarity(attacked_model.class_vector(c).planes[0],
                             clean_model.class_vector(c).planes[0]);
    after += hv::similarity(world.model.class_vector(c).planes[0],
                            clean_model.class_vector(c).planes[0]);
  }
  EXPECT_GT(after, before + 0.005 * kClasses);
  // And accuracy did not degrade relative to the attacked model.
  EXPECT_GE(world.model.evaluate(world.queries, world.labels),
            attacked_model.evaluate(world.queries, world.labels) - 0.01);
  EXPECT_GE(world.model.evaluate(world.queries, world.labels), clean - 0.05);
}

TEST(RecoveryEngine, RepairsAreClassBalanced) {
  auto world = make_world(8);
  util::Xoshiro256 rng(9);
  auto regions = world.model.memory_regions();
  fault::BitFlipInjector::inject(regions, 0.15,
                                 fault::AttackMode::kClustered, rng);
  RecoveryConfig config;
  RecoveryEngine engine(world.model, config);
  std::vector<int> per_class(kClasses, 0);
  for (int epoch = 0; epoch < 12; ++epoch) {
    for (std::size_t i = 0; i < world.queries.size(); ++i) {
      const auto obs = engine.observe(world.queries[i]);
      if (obs.substituted_bits > 0) {
        ++per_class[static_cast<std::size_t>(obs.predicted)];
      }
    }
  }
  const auto [min_it, max_it] =
      std::minmax_element(per_class.begin(), per_class.end());
  // Balanced repair keeps classes within slack+1 of each other over the
  // committed substitutions.
  EXPECT_LE(*max_it - *min_it,
            static_cast<int>(config.repair_balance_slack) + 1);
}

TEST(RecoveryEngine, SubstitutionProbabilityZeroChangesNothing) {
  auto world = make_world(10);
  util::Xoshiro256 rng(11);
  auto regions = world.model.memory_regions();
  fault::BitFlipInjector::inject(regions, 0.10,
                                 fault::AttackMode::kClustered, rng);
  RecoveryConfig config;
  config.substitution_prob = 0.0;
  RecoveryEngine engine(world.model, config);
  for (const auto& q : world.queries) engine.observe(q);
  EXPECT_EQ(engine.total_substituted_bits(), 0u);
}

TEST(RecoveryEngine, ConfidenceGateBlocksEverythingAtOne) {
  auto world = make_world(12);
  util::Xoshiro256 rng(13);
  auto regions = world.model.memory_regions();
  fault::BitFlipInjector::inject(regions, 0.10,
                                 fault::AttackMode::kClustered, rng);
  RecoveryConfig config;
  config.confidence_threshold = 1.01;  // nothing can pass
  RecoveryEngine engine(world.model, config);
  for (const auto& q : world.queries) engine.observe(q);
  EXPECT_EQ(engine.total_updates(), 0u);
  EXPECT_EQ(engine.total_substituted_bits(), 0u);
}

TEST(RecoveryEngine, TotalUpdatesCountsOnlyAppliedRepairs) {
  // Regression: observe() used to bump total_updates_ whenever a chunk
  // was *flagged*, even when every flag was gated out (consensus,
  // budgets, balance) and no repair touched the model. Consumers — the
  // serve-layer stats, the recover CLI — read total_updates() as repair
  // activity, so detection-only passes must leave it at zero.
  auto world = make_world(16);
  util::Xoshiro256 rng(17);
  auto regions = world.model.memory_regions();
  fault::BitFlipInjector::inject(regions, 0.15,
                                 fault::AttackMode::kClustered, rng);

  RecoveryConfig config;
  config.consensus_flags = 1000;  // never reached: flags only buffer
  RecoveryEngine engine(world.model, config);
  std::size_t flags = 0;
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (const auto& q : world.queries) flags += engine.observe(q).faulty_chunks;
  }
  EXPECT_GT(flags, 0u);  // damage was detected...
  EXPECT_EQ(engine.total_updates(), 0u);  // ...but nothing was repaired
  EXPECT_EQ(engine.total_substituted_bits(), 0u);
}

TEST(RecoveryEngine, TotalUpdatesMatchesObservedRepairs) {
  // With single-query substitution at probability 1, a repair is applied
  // exactly when observe() reports substituted bits — total_updates()
  // must agree with that count observation by observation.
  auto world = make_world(18);
  util::Xoshiro256 rng(19);
  auto regions = world.model.memory_regions();
  fault::BitFlipInjector::inject(regions, 0.15,
                                 fault::AttackMode::kClustered, rng);

  RecoveryConfig config;
  config.consensus_flags = 1;
  config.substitution_prob = 1.0;
  RecoveryEngine engine(world.model, config);
  std::size_t applied = 0;
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (const auto& q : world.queries) {
      if (engine.observe(q).substituted_bits > 0) ++applied;
    }
  }
  EXPECT_GT(applied, 0u);
  EXPECT_EQ(engine.total_updates(), applied);
}

TEST(RecoveryEngine, GlobalBudgetBoundsRewrites) {
  auto world = make_world(14);
  util::Xoshiro256 rng(15);
  auto regions = world.model.memory_regions();
  fault::BitFlipInjector::inject(regions, 0.25,
                                 fault::AttackMode::kClustered, rng);
  RecoveryConfig config;
  config.max_total_substitution_fraction = 0.002;
  config.max_updates_per_chunk = 0;  // no per-chunk cap
  RecoveryEngine engine(world.model, config);
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (const auto& q : world.queries) engine.observe(q);
  }
  const auto cap = static_cast<std::size_t>(0.002 * kDim * kClasses);
  // One final in-flight repair may overshoot the cap by at most a chunk.
  EXPECT_LE(engine.total_substituted_bits(), cap + kDim / 10);
}

}  // namespace
}  // namespace robusthd::model
