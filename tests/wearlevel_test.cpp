// Tests for Start-Gap wear levelling and the crossbar HDC kernels.
#include <gtest/gtest.h>

#include "robusthd/pim/hdc_kernels.hpp"
#include "robusthd/pim/wearlevel.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::pim {
namespace {

TEST(StartGap, MappingIsABijection) {
  StartGapLeveler leveler(16, 5);
  for (int step = 0; step < 200; ++step) {
    std::vector<bool> seen(17, false);
    for (std::size_t l = 0; l < 16; ++l) {
      const auto p = leveler.physical_of(l);
      ASSERT_LT(p, 17u);
      ASSERT_FALSE(seen[p]) << "collision at step " << step;
      seen[p] = true;
    }
    leveler.write(static_cast<std::size_t>(step) % 16);
  }
}

TEST(StartGap, MappingRotatesOverTime) {
  StartGapLeveler leveler(8, 1);  // gap moves on every write
  const auto before = leveler.physical_of(3);
  for (int i = 0; i < 40; ++i) leveler.write(0);
  EXPECT_GT(leveler.gap_moves(), 30u);
  // After many gap movements the mapping must have moved.
  bool moved = false;
  for (int i = 0; i < 9; ++i) {
    if (leveler.physical_of(3) != before) moved = true;
    leveler.write(0);
  }
  EXPECT_TRUE(moved);
}

TEST(StartGap, LevelsAHotLine) {
  // Pathological workload: every write hits logical line 0. Without
  // levelling one physical line absorbs everything (imbalance = lines);
  // Start-Gap spreads it to a small constant factor.
  const std::size_t lines = 64;
  StartGapLeveler leveler(lines, 8);
  for (int i = 0; i < 200000; ++i) leveler.write(0);
  EXPECT_LT(leveler.imbalance(), 10.0);
  // Every physical line took some writes.
  std::size_t untouched = 0;
  for (const auto w : leveler.wear()) untouched += (w == 0);
  EXPECT_EQ(untouched, 0u);
}

TEST(StartGap, UniformWorkloadStaysUniform) {
  StartGapLeveler leveler(32, 100);
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 64000; ++i) {
    leveler.write(static_cast<std::size_t>(rng.below(32)));
  }
  EXPECT_LT(leveler.imbalance(), 1.5);
}

TEST(CrossbarHdcUnit, StoresAndReadsClasses) {
  util::Xoshiro256 rng(2);
  CrossbarHdcUnit unit(256, 4);
  std::vector<hv::BinVec> classes;
  for (std::size_t c = 0; c < 4; ++c) {
    classes.push_back(hv::BinVec::random(256, rng));
    unit.load_class(c, classes.back());
  }
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(unit.read_class(c), classes[c]);
  }
}

TEST(CrossbarHdcUnit, HammingSearchMatchesSoftware) {
  util::Xoshiro256 rng(3);
  CrossbarHdcUnit unit(512, 6);
  std::vector<hv::BinVec> classes;
  for (std::size_t c = 0; c < 6; ++c) {
    classes.push_back(hv::BinVec::random(512, rng));
    unit.load_class(c, classes.back());
  }
  for (int trial = 0; trial < 5; ++trial) {
    const auto query = hv::BinVec::random(512, rng);
    const auto distances = unit.hamming_search(query);
    ASSERT_EQ(distances.size(), 6u);
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_EQ(distances[c], hv::hamming(query, classes[c])) << c;
    }
  }
}

TEST(CrossbarHdcUnit, NorStepsMatchCostAlgebra) {
  util::Xoshiro256 rng(4);
  CrossbarHdcUnit unit(128, 5);
  for (std::size_t c = 0; c < 5; ++c) {
    unit.load_class(c, hv::BinVec::random(128, rng));
  }
  unit.array().reset_counters();
  unit.hamming_search(hv::BinVec::random(128, rng));
  EXPECT_EQ(unit.array().nor_steps(),
            CrossbarHdcUnit::expected_nor_steps(5));
  EXPECT_EQ(unit.array().nor_steps(), 5 * cost_xor(1).cycles);
}

TEST(CrossbarHdcUnit, SearchWearLandsInScratchColumns) {
  util::Xoshiro256 rng(5);
  CrossbarHdcUnit unit(64, 2);
  for (std::size_t c = 0; c < 2; ++c) {
    unit.load_class(c, hv::BinVec::random(64, rng));
  }
  unit.array().reset_counters();
  unit.hamming_search(hv::BinVec::random(64, rng));
  // Class columns are never written by the search itself.
  for (std::size_t d = 0; d < 64; ++d) {
    EXPECT_EQ(unit.array().cell_writes(d, 0), 0u);
    EXPECT_EQ(unit.array().cell_writes(d, 1), 0u);
  }
  EXPECT_GT(unit.array().total_writes(), 0u);
}

}  // namespace
}  // namespace robusthd::pim
