// Tests for the alternative encoders, sequence (n-gram) encoding, and the
// associative memory.
#include <gtest/gtest.h>

#include "robusthd/hv/alt_encoders.hpp"
#include "robusthd/hv/assoc.hpp"
#include "robusthd/hv/sequence.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::hv {
namespace {

// ---------------------------------------------------------------- encoders

template <typename E>
void expect_encoder_basics(const E& encoder, std::size_t features) {
  util::Xoshiro256 rng(11);
  std::vector<float> x(features), y(features), z(features);
  for (std::size_t i = 0; i < features; ++i) {
    x[i] = static_cast<float>(rng.uniform());
    y[i] = std::min(1.0f, x[i] + 0.02f);
    z[i] = static_cast<float>(rng.uniform());
  }
  const auto hx = encoder.encode(x);
  // Deterministic.
  EXPECT_EQ(hx, encoder.encode(x));
  // Locality: nearby inputs stay closer than unrelated inputs.
  const double near = similarity(hx, encoder.encode(y));
  const double far = similarity(hx, encoder.encode(z));
  EXPECT_GT(near, far);
  EXPECT_GT(near, 0.8);
}

TEST(ThermometerEncoder, BasicsAndBalance) {
  ThermometerEncoder::Config config;
  config.dimension = 2048;
  config.levels = 16;
  ThermometerEncoder encoder(40, config);
  EXPECT_EQ(encoder.dimension(), 2048u);
  EXPECT_EQ(encoder.feature_count(), 40u);
  expect_encoder_basics(encoder, 40);
}

TEST(RandomProjectionEncoder, BasicsAndBalance) {
  RandomProjectionEncoder::Config config;
  config.dimension = 2048;
  RandomProjectionEncoder encoder(40, config);
  EXPECT_EQ(encoder.dimension(), 2048u);
  expect_encoder_basics(encoder, 40);
}

TEST(Encoders, DifferentFamiliesDisagree) {
  // Same input, different encoders: codes should be unrelated (~0.5).
  ThermometerEncoder::Config tc;
  tc.dimension = 2048;
  RandomProjectionEncoder::Config pc;
  pc.dimension = 2048;
  ThermometerEncoder thermometer(20, tc);
  RandomProjectionEncoder projection(20, pc);
  std::vector<float> x(20, 0.7f);
  EXPECT_NEAR(similarity(thermometer.encode(x), projection.encode(x)), 0.5,
              0.06);
}

TEST(Encoders, PolymorphicUseThroughBase) {
  ThermometerEncoder::Config config;
  config.dimension = 1024;
  ThermometerEncoder concrete(8, config);
  const Encoder& encoder = concrete;
  data::Dataset d;
  d.features = util::Matrix(3, 8, 0.5f);
  d.labels = {0, 0, 0};
  d.num_classes = 1;
  const auto all = encoder.encode_all(d);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].dimension(), 1024u);
}

// ---------------------------------------------------------------- sequence

TEST(SequenceEncoder, NgramOrderSensitivity) {
  SequenceEncoder::Config config;
  config.dimension = 4096;
  config.ngram = 2;
  SequenceEncoder encoder(5, config);
  const std::size_t ab[] = {0, 1};
  const std::size_t ba[] = {1, 0};
  // "ab" and "ba" must encode differently (rotation breaks symmetry).
  EXPECT_NEAR(similarity(encoder.encode_ngram(ab), encoder.encode_ngram(ba)),
              0.5, 0.05);
}

TEST(SequenceEncoder, SharedNgramsMakeSequencesSimilar) {
  SequenceEncoder::Config config;
  config.dimension = 4096;
  config.ngram = 3;
  SequenceEncoder encoder(4, config);
  const std::size_t base[] = {0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3};
  std::size_t tweaked[12];
  std::copy(std::begin(base), std::end(base), tweaked);
  tweaked[11] = 0;  // change one symbol at the end
  std::vector<std::size_t> unrelated{3, 3, 0, 0, 2, 2, 1, 1, 3, 0, 2, 1};
  const auto h = encoder.encode(base);
  EXPECT_GT(similarity(h, encoder.encode(tweaked)),
            similarity(h, encoder.encode(unrelated)));
}

TEST(SequenceEncoder, HandlesShortAndEmptySequences) {
  SequenceEncoder::Config config;
  config.dimension = 1024;
  config.ngram = 4;
  SequenceEncoder encoder(3, config);
  EXPECT_EQ(encoder.encode({}).count_ones(), 0u);
  const std::size_t two[] = {0, 2};
  const auto h = encoder.encode(two);
  EXPECT_EQ(h.dimension(), 1024u);
  EXPECT_GT(h.count_ones(), 0u);
  // Deterministic.
  EXPECT_EQ(h, encoder.encode(two));
}

TEST(SequenceEncoder, ClassifiesLanguagesOfNgrams) {
  // Two "languages" over 8 symbols with different bigram statistics; the
  // sequence encoder + associative memory should tell them apart.
  SequenceEncoder::Config config;
  config.dimension = 4096;
  config.ngram = 2;
  SequenceEncoder encoder(8, config);
  util::Xoshiro256 rng(5);

  auto sample = [&](bool even_language) {
    std::vector<std::size_t> seq(40);
    for (auto& s : seq) {
      const auto step = rng.below(4) * 2;           // 0,2,4,6
      s = even_language ? step : (step + 1) % 8;    // evens vs odds
    }
    return seq;
  };

  AssociativeMemory::Config mem_config;
  mem_config.dimension = 4096;
  AssociativeMemory memory(mem_config);
  for (int i = 0; i < 10; ++i) {
    memory.insert(encoder.encode(sample(true)), 0);
    memory.insert(encoder.encode(sample(false)), 1);
  }
  int correct = 0;
  for (int i = 0; i < 20; ++i) {
    const bool even = (i % 2) == 0;
    correct += memory.predict(encoder.encode(sample(even)), 3) ==
               (even ? 0 : 1);
  }
  EXPECT_GE(correct, 18);
}

// ------------------------------------------------------------ associative

TEST(AssociativeMemory, EmptyBehaviour) {
  AssociativeMemory memory({.dimension = 256, .merge_radius = 0});
  util::Xoshiro256 rng(6);
  const auto q = BinVec::random(256, rng);
  EXPECT_FALSE(memory.nearest(q).has_value());
  EXPECT_TRUE(memory.top_k(q, 3).empty());
  EXPECT_EQ(memory.predict(q), -1);
}

TEST(AssociativeMemory, ExactAndNoisyRecall) {
  AssociativeMemory memory({.dimension = 2048, .merge_radius = 0});
  util::Xoshiro256 rng(7);
  std::vector<BinVec> stored;
  for (int i = 0; i < 10; ++i) {
    stored.push_back(BinVec::random(2048, rng));
    memory.insert(stored.back(), i);
  }
  for (int i = 0; i < 10; ++i) {
    // Exact recall.
    const auto exact = memory.nearest(stored[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(exact.has_value());
    EXPECT_EQ(exact->label, i);
    EXPECT_EQ(exact->distance, 0u);
    // Recall under 20% noise.
    auto noisy = stored[static_cast<std::size_t>(i)];
    for (std::size_t d = 0; d < 2048; ++d) {
      if (rng.bernoulli(0.2)) noisy.flip(d);
    }
    EXPECT_EQ(memory.predict(noisy), i);
  }
}

TEST(AssociativeMemory, TopKOrderedByDistance) {
  AssociativeMemory memory({.dimension = 1024, .merge_radius = 0});
  util::Xoshiro256 rng(8);
  for (int i = 0; i < 6; ++i) {
    memory.insert(BinVec::random(1024, rng), i);
  }
  const auto q = BinVec::random(1024, rng);
  const auto matches = memory.top_k(q, 4);
  ASSERT_EQ(matches.size(), 4u);
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_LE(matches[i - 1].distance, matches[i].distance);
  }
}

TEST(AssociativeMemory, PrototypeModeMergesNearbyInserts) {
  AssociativeMemory memory({.dimension = 2048, .merge_radius = 600});
  util::Xoshiro256 rng(9);
  const auto prototype = BinVec::random(2048, rng);
  for (int i = 0; i < 15; ++i) {
    auto sample = prototype;
    for (std::size_t d = 0; d < 2048; ++d) {
      if (rng.bernoulli(0.1)) sample.flip(d);
    }
    memory.insert(sample, 7);
  }
  EXPECT_EQ(memory.size(), 1u);  // everything bundled into one slot
  EXPECT_EQ(memory.bundled(0), 15u);
  // The bundled prototype is close to the generative one.
  EXPECT_GT(similarity(memory.vector(0), prototype), 0.9);
  // A distant insert opens a new slot even in prototype mode.
  memory.insert(BinVec::random(2048, rng), 7);
  EXPECT_EQ(memory.size(), 2u);
}

TEST(AssociativeMemory, MergeRespectsLabels) {
  AssociativeMemory memory({.dimension = 1024, .merge_radius = 1024});
  util::Xoshiro256 rng(10);
  const auto v = BinVec::random(1024, rng);
  memory.insert(v, 0);
  memory.insert(v, 1);  // same vector, different label -> separate slot
  EXPECT_EQ(memory.size(), 2u);
}

}  // namespace
}  // namespace robusthd::hv
