// Tests for the CSV loader, train/test splitting and classification
// metrics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "robusthd/data/loader.hpp"
#include "robusthd/model/metrics.hpp"

namespace robusthd {
namespace {

TEST(CsvLoader, ParsesNumericLabelsLastColumn) {
  const std::string csv =
      "1.0,2.0,0\n"
      "3.0,4.0,1\n"
      "5.5,6.5,0\n";
  const auto d = data::parse_csv(csv);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.feature_count(), 2u);
  EXPECT_EQ(d.num_classes, 2u);
  EXPECT_FLOAT_EQ(d.features(2, 1), 6.5f);
  EXPECT_EQ(d.labels, (std::vector<int>{0, 1, 0}));
}

TEST(CsvLoader, StringLabelsFirstColumnWithHeader) {
  const std::string csv =
      "label,f1,f2\n"
      "cat,1,2\n"
      "dog,3,4\n"
      "cat,5,6\n"
      "bird,7,8\n";
  data::CsvOptions options;
  options.label_column = 0;
  options.has_header = true;
  const auto d = data::parse_csv(csv, options);
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.num_classes, 3u);
  // First-appearance order: cat=0, dog=1, bird=2.
  EXPECT_EQ(d.labels, (std::vector<int>{0, 1, 0, 2}));
  EXPECT_FLOAT_EQ(d.features(3, 0), 7.0f);
}

TEST(CsvLoader, SkipsBlankLinesAndTrimsWhitespace) {
  const std::string csv = " 1.0 , 2.0 , a \n\n 3.0 , 4.0 , b \r\n";
  const auto d = data::parse_csv(csv);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_FLOAT_EQ(d.features(0, 0), 1.0f);
  EXPECT_EQ(d.num_classes, 2u);
}

TEST(CsvLoader, RejectsMalformedInput) {
  EXPECT_THROW(data::parse_csv(""), std::runtime_error);
  EXPECT_THROW(data::parse_csv("1,2,a\n1,2\n"), std::runtime_error);  // ragged
  EXPECT_THROW(data::parse_csv("1,oops,a\n"), std::runtime_error);  // text
  data::CsvOptions bad;
  bad.label_column = 7;
  EXPECT_THROW(data::parse_csv("1,2,3\n", bad), std::runtime_error);
}

TEST(CsvLoader, FileRoundTrip) {
  const std::string path = "/tmp/robusthd_loader_test.csv";
  {
    std::ofstream out(path);
    out << "0.1,0.2,x\n0.3,0.4,y\n";
  }
  const auto d = data::load_csv(path);
  std::remove(path.c_str());
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.num_classes, 2u);
  EXPECT_THROW(data::load_csv("/no/such/file.csv"), std::runtime_error);
}

TEST(TrainTestSplit, PartitionsWithoutLoss) {
  std::string csv;
  for (int i = 0; i < 100; ++i) {
    csv += std::to_string(i) + ",0," + std::to_string(i % 3) + "\n";
  }
  const auto d = data::parse_csv(csv);
  const auto split = data::train_test_split(d, 0.8, 7);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.num_classes, 3u);
  // Every original sample appears exactly once (identified by feature 0).
  std::set<float> seen;
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    seen.insert(split.train.features(i, 0));
  }
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    seen.insert(split.test.features(i, 0));
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_THROW(data::train_test_split(d, 0.0), std::invalid_argument);
  EXPECT_THROW(data::train_test_split(d, 1.0), std::invalid_argument);
}

TEST(Metrics, PerfectPredictions) {
  const int truth[] = {0, 1, 2, 0, 1, 2};
  const auto report = model::classification_report(truth, truth, 3);
  EXPECT_DOUBLE_EQ(report.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(report.macro_f1, 1.0);
  for (const auto& m : report.per_class) {
    EXPECT_DOUBLE_EQ(m.precision, 1.0);
    EXPECT_DOUBLE_EQ(m.recall, 1.0);
    EXPECT_EQ(m.support, 2u);
  }
}

TEST(Metrics, KnownConfusion) {
  // truth:  0 0 0 0 1 1
  // pred:   0 0 1 1 1 0
  const int truth[] = {0, 0, 0, 0, 1, 1};
  const int pred[] = {0, 0, 1, 1, 1, 0};
  const auto report = model::classification_report(pred, truth, 2);
  EXPECT_NEAR(report.accuracy, 3.0 / 6.0, 1e-12);
  // Class 0: precision 2/3, recall 2/4.
  EXPECT_NEAR(report.per_class[0].precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(report.per_class[0].recall, 0.5, 1e-12);
  EXPECT_EQ(report.per_class[0].support, 4u);
  // Class 1: precision 1/3, recall 1/2.
  EXPECT_NEAR(report.per_class[1].precision, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(report.per_class[1].recall, 0.5, 1e-12);
}

TEST(Metrics, HandlesAbsentClass) {
  // Class 2 never predicted nor present.
  const int truth[] = {0, 1, 0};
  const int pred[] = {0, 1, 1};
  const auto report = model::classification_report(pred, truth, 3);
  EXPECT_DOUBLE_EQ(report.per_class[2].precision, 0.0);
  EXPECT_DOUBLE_EQ(report.per_class[2].recall, 0.0);
  EXPECT_EQ(report.per_class[2].support, 0u);
}

TEST(Metrics, ReportRenders) {
  const int truth[] = {0, 1, 0, 1};
  const int pred[] = {0, 1, 1, 1};
  const auto report = model::classification_report(pred, truth, 2);
  const auto text = report.to_string();
  EXPECT_NE(text.find("precision"), std::string::npos);
  EXPECT_NE(text.find("macro"), std::string::npos);
  EXPECT_NE(text.find("accuracy: 75.00%"), std::string::npos);
}

}  // namespace
}  // namespace robusthd
