// Tests for attack recording and replay.
#include "robusthd/fault/trace.hpp"

#include <gtest/gtest.h>

#include "robusthd/util/bitops.hpp"

namespace robusthd::fault {
namespace {

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.below(256));
  return out;
}

TEST(AttackTrace, RecordCapturesEveryFlip) {
  auto buffer = random_bytes(125, 1);
  std::vector<MemoryRegion> regions{{buffer, 1, "hv"}};
  util::Xoshiro256 rng(2);
  AttackTrace trace;
  const auto report = trace.record(regions, 0.05, AttackMode::kRandom, rng);
  EXPECT_EQ(trace.size(), report.flipped);
  EXPECT_EQ(trace.size(), 50u);
}

TEST(AttackTrace, ReplayReproducesTheAttackExactly) {
  auto original = random_bytes(200, 3);
  auto attacked = original;
  std::vector<MemoryRegion> regions{{attacked, 8, "w"}};
  util::Xoshiro256 rng(4);
  AttackTrace trace;
  trace.record(regions, 0.08, AttackMode::kTargeted, rng);

  // Replay onto a fresh copy: must produce the identical corrupted state.
  auto replayed = original;
  std::vector<MemoryRegion> fresh{{replayed, 8, "w"}};
  trace.replay(fresh);
  EXPECT_EQ(replayed, attacked);

  // Replaying again flips the same bits back to the original.
  trace.replay(fresh);
  EXPECT_EQ(replayed, original);
}

TEST(AttackTrace, MultiRegionAttribution) {
  auto a = random_bytes(64, 5);
  auto b = random_bytes(64, 6);
  std::vector<MemoryRegion> regions{{a, 1, "a"}, {b, 1, "b"}};
  util::Xoshiro256 rng(7);
  AttackTrace trace;
  trace.record(regions, 0.1, AttackMode::kRandom, rng);
  bool saw_region0 = false, saw_region1 = false;
  for (const auto& event : trace.events()) {
    ASSERT_LT(event.region, 2u);
    ASSERT_LT(event.bit, 512u);
    saw_region0 |= event.region == 0;
    saw_region1 |= event.region == 1;
  }
  EXPECT_TRUE(saw_region0);
  EXPECT_TRUE(saw_region1);
}

TEST(AttackTrace, ReplayRejectsMismatchedShape) {
  auto buffer = random_bytes(64, 8);
  std::vector<MemoryRegion> regions{{buffer, 1, "x"}};
  util::Xoshiro256 rng(9);
  AttackTrace trace;
  trace.record(regions, 0.1, AttackMode::kRandom, rng);
  std::vector<std::byte> tiny(1);
  std::vector<MemoryRegion> wrong{{tiny, 1, "tiny"}};
  EXPECT_THROW(trace.replay(wrong), std::out_of_range);
}

TEST(AttackTrace, SerializationRoundTrip) {
  auto buffer = random_bytes(100, 10);
  std::vector<MemoryRegion> regions{{buffer, 8, "w"}};
  util::Xoshiro256 rng(11);
  AttackTrace trace;
  trace.record(regions, 0.06, AttackMode::kRandom, rng);

  const auto blob = trace.serialize();
  const auto restored = AttackTrace::deserialize(blob);
  ASSERT_EQ(restored.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(restored.events()[i], trace.events()[i]);
  }
  EXPECT_THROW(AttackTrace::deserialize(std::vector<std::byte>(3)),
               std::runtime_error);
}

}  // namespace
}  // namespace robusthd::fault
