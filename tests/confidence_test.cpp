// Tests for the prediction-confidence block.
#include "robusthd/model/confidence.hpp"

#include <gtest/gtest.h>

namespace robusthd::model {
namespace {

TEST(Confidence, EmptyScores) {
  const auto c = assess({});
  EXPECT_EQ(c.predicted, -1);
  EXPECT_DOUBLE_EQ(c.top_probability, 0.0);
}

TEST(Confidence, SingleClassIsCertain) {
  const double s[] = {0.9};
  const auto c = assess(s);
  EXPECT_EQ(c.predicted, 0);
  EXPECT_DOUBLE_EQ(c.top_probability, 1.0);
}

TEST(Confidence, PicksArgmaxAndMargin) {
  const double s[] = {0.80, 0.92, 0.85};
  const auto c = assess(s);
  EXPECT_EQ(c.predicted, 1);
  EXPECT_NEAR(c.margin, 0.07, 1e-12);
}

TEST(Confidence, ClearWinnerBeatsAmbiguous) {
  const double clear[] = {0.80, 0.95, 0.81, 0.79};
  const double tied[] = {0.88, 0.89, 0.88, 0.89};
  EXPECT_GT(assess(clear).top_probability, assess(tied).top_probability);
}

TEST(Confidence, ScaleInvariantUnderZScoring) {
  // z-scored softmax should be insensitive to a shared offset.
  const double a[] = {0.50, 0.60, 0.52};
  const double b[] = {0.80, 0.90, 0.82};
  EXPECT_NEAR(assess(a).top_probability, assess(b).top_probability, 1e-9);
}

TEST(Confidence, TemperatureControlsSharpness) {
  const double s[] = {0.80, 0.90, 0.82, 0.81};
  ConfidenceConfig soft;
  soft.temperature = 2.0;
  ConfidenceConfig sharp;
  sharp.temperature = 0.1;
  EXPECT_LT(assess(s, soft).top_probability,
            assess(s, sharp).top_probability);
}

TEST(Confidence, TwoClassUsesNoiseFloorWhenDimensionGiven) {
  // With two classes and a known dimension, a margin well above the
  // Hamming noise floor should give high confidence...
  const double wide[] = {0.70, 0.90};
  const auto high = assess(wide, {}, 10000);
  EXPECT_GT(high.top_probability, 0.95);
  // ...and a margin at the noise floor should not.
  const double thin[] = {0.8990, 0.9000};
  const auto low = assess(thin, {}, 10000);
  EXPECT_LT(low.top_probability, 0.8);
  EXPECT_EQ(low.predicted, 1);
}

TEST(Confidence, TwoClassSmallerDimensionLessConfident) {
  const double s[] = {0.88, 0.90};
  const auto big = assess(s, {}, 10000);
  const auto small = assess(s, {}, 100);
  EXPECT_GT(big.top_probability, small.top_probability);
}

TEST(Confidence, ProbabilityBounds) {
  const double s[] = {0.1, 0.9, 0.5, 0.3, 0.2};
  const auto c = assess(s);
  EXPECT_GT(c.top_probability, 1.0 / 5.0);
  EXPECT_LE(c.top_probability, 1.0);
}

}  // namespace
}  // namespace robusthd::model
