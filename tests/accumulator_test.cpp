// Tests for the bundling accumulators (bit-sliced and signed).
#include "robusthd/hv/accumulator.hpp"

#include <gtest/gtest.h>

#include "robusthd/util/rng.hpp"

namespace robusthd::hv {
namespace {

TEST(BitSliceCounter, CountsMatchScalarReference) {
  const std::size_t dim = 300;
  util::Xoshiro256 rng(1);
  BitSliceCounter counter(dim);
  std::vector<std::uint32_t> reference(dim, 0);
  for (int i = 0; i < 37; ++i) {
    const auto v = BinVec::random(dim, rng);
    counter.add(v);
    for (std::size_t d = 0; d < dim; ++d) reference[d] += v.get(d);
  }
  EXPECT_EQ(counter.added(), 37u);
  for (std::size_t d = 0; d < dim; ++d) {
    ASSERT_EQ(counter.count(d), reference[d]) << "dim " << d;
  }
}

TEST(BitSliceCounter, MajorityThreshold) {
  const std::size_t dim = 64;
  BitSliceCounter counter(dim);
  BinVec ones(dim);
  for (std::size_t d = 0; d < dim; ++d) ones.set(d, true);
  BinVec zeros(dim);
  counter.add(ones);
  counter.add(ones);
  counter.add(zeros);
  const auto out = counter.threshold_majority();
  EXPECT_EQ(out.count_ones(), dim);  // 2 of 3 -> majority 1
}

TEST(BitSliceCounter, TieBreakUsed) {
  const std::size_t dim = 10;
  BitSliceCounter counter(dim);
  BinVec ones(dim);
  for (std::size_t d = 0; d < dim; ++d) ones.set(d, true);
  counter.add(ones);
  counter.add(BinVec(dim));  // exact tie everywhere
  BinVec tie(dim);
  tie.set(3, true);
  const auto out = counter.threshold_majority(&tie);
  EXPECT_EQ(out.count_ones(), 1u);
  EXPECT_TRUE(out.get(3));
}

TEST(BitSliceCounter, ArbitraryThreshold) {
  const std::size_t dim = 8;
  BitSliceCounter counter(dim);
  BinVec v(dim);
  v.set(0, true);
  counter.add(v);
  counter.add(v);
  v.set(1, true);
  counter.add(v);
  // counts: bit0=3, bit1=1, rest 0.
  EXPECT_EQ(counter.threshold(0).count_ones(), 2u);
  EXPECT_EQ(counter.threshold(1).count_ones(), 1u);
  EXPECT_EQ(counter.threshold(2).count_ones(), 1u);
  EXPECT_EQ(counter.threshold(3).count_ones(), 0u);
}

TEST(BitSliceCounter, ResetClears) {
  BitSliceCounter counter(16);
  util::Xoshiro256 rng(2);
  counter.add(BinVec::random(16, rng));
  counter.reset();
  EXPECT_EQ(counter.added(), 0u);
  EXPECT_EQ(counter.count(3), 0u);
}

TEST(BitSliceCounter, PlaneGrowthIsLogarithmic) {
  BitSliceCounter counter(64);
  BinVec ones(64);
  for (std::size_t d = 0; d < 64; ++d) ones.set(d, true);
  for (int i = 0; i < 1000; ++i) counter.add(ones);
  EXPECT_EQ(counter.count(0), 1000u);
  EXPECT_LE(counter.plane_count(), 11u);  // ceil(log2(1001))
}

TEST(SignedAccumulator, BipolarCounting) {
  SignedAccumulator acc(4);
  BinVec v(4);
  v.set(0, true);
  v.set(1, true);
  acc.add(v);          // +1 +1 -1 -1
  acc.add(v, 2);       // +2 +2 -2 -2
  v.set(0, false);
  acc.add(v, -1);      // +1 -1 +1 +1
  EXPECT_EQ(acc.count(0), 4);
  EXPECT_EQ(acc.count(1), 2);
  EXPECT_EQ(acc.count(2), -2);
  EXPECT_EQ(acc.count(3), -2);
}

TEST(SignedAccumulator, SignThreshold) {
  SignedAccumulator acc(3);
  acc.count(0) = 5;
  acc.count(1) = -5;
  acc.count(2) = 0;
  BinVec tie(3);
  tie.set(2, true);
  const auto out = acc.sign(&tie);
  EXPECT_TRUE(out.get(0));
  EXPECT_FALSE(out.get(1));
  EXPECT_TRUE(out.get(2));
  const auto out_no_tie = acc.sign();
  EXPECT_FALSE(out_no_tie.get(2));
}

TEST(SignedAccumulator, OneBitQuantizationIsSign) {
  SignedAccumulator acc(5);
  acc.count(0) = 10;
  acc.count(1) = -10;
  acc.count(2) = 1;
  acc.count(3) = -1;
  acc.count(4) = 0;
  const auto planes = acc.quantize_planes(1);
  ASSERT_EQ(planes.size(), 1u);
  EXPECT_EQ(planes[0], acc.sign());
}

TEST(SignedAccumulator, TwoBitQuantizationOrdersByMagnitude) {
  SignedAccumulator acc(4);
  acc.count(0) = 100;   // strong 1 -> level 3
  acc.count(1) = 10;    // weak 1
  acc.count(2) = -10;   // weak 0
  acc.count(3) = -100;  // strong 0 -> level 0
  const auto planes = acc.quantize_planes(2);
  ASSERT_EQ(planes.size(), 2u);
  auto level = [&](std::size_t d) {
    return (planes[1].get(d) ? 2 : 0) + (planes[0].get(d) ? 1 : 0);
  };
  EXPECT_EQ(level(0), 3);
  EXPECT_EQ(level(3), 0);
  EXPECT_GE(level(1), 2);  // positive counts land in upper half
  EXPECT_LE(level(2), 1);  // negative counts land in lower half
  EXPECT_GT(level(0) - level(3), level(1) - level(2));
}

class BitSliceSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitSliceSizes, AgreesWithSignedAccumulatorMajority) {
  // Property: majority via bit-sliced counting == sign of bipolar counts
  // for odd bundle sizes (no ties possible).
  const std::size_t dim = GetParam();
  util::Xoshiro256 rng(dim);
  BitSliceCounter bits(dim);
  SignedAccumulator sign(dim);
  for (int i = 0; i < 11; ++i) {
    const auto v = BinVec::random(dim, rng);
    bits.add(v);
    sign.add(v);
  }
  EXPECT_EQ(bits.threshold_majority(), sign.sign());
}

INSTANTIATE_TEST_SUITE_P(Dims, BitSliceSizes,
                         ::testing::Values(1, 63, 64, 65, 500, 1000));

}  // namespace
}  // namespace robusthd::hv
