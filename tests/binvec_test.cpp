// Unit and property tests for the packed binary hypervector.
#include "robusthd/hv/binvec.hpp"

#include <gtest/gtest.h>

#include "robusthd/util/aligned.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::hv {
namespace {

TEST(BinVec, WordStorageIsCachelineAligned) {
  // The SIMD kernels and the plane arena assume 64-byte-aligned word
  // storage; BinVec's allocator guarantees it for every dimension.
  util::Xoshiro256 rng(99);
  for (std::size_t dim : {1u, 63u, 64u, 65u, 1000u, 10000u}) {
    BinVec v(dim);
    EXPECT_TRUE(util::is_cacheline_aligned(v.words().data())) << dim;
    BinVec r = BinVec::random(dim, rng);
    EXPECT_TRUE(util::is_cacheline_aligned(r.words().data())) << dim;
  }
}

TEST(BinVec, DefaultIsEmpty) {
  BinVec v;
  EXPECT_EQ(v.dimension(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(BinVec, ZeroInitialized) {
  BinVec v(130);
  EXPECT_EQ(v.dimension(), 130u);
  EXPECT_EQ(v.word_count(), 3u);
  EXPECT_EQ(v.count_ones(), 0u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BinVec, SetGetFlipRoundTrip) {
  BinVec v(200);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(199, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(199));
  EXPECT_EQ(v.count_ones(), 4u);
  v.flip(63);
  EXPECT_FALSE(v.get(63));
  v.flip(62);
  EXPECT_TRUE(v.get(62));
  EXPECT_EQ(v.count_ones(), 4u);
}

TEST(BinVec, RandomIsBalanced) {
  util::Xoshiro256 rng(7);
  const auto v = BinVec::random(10000, rng);
  const auto ones = v.count_ones();
  // Binomial(10000, 1/2): mean 5000, sd 50; 6 sigma bounds.
  EXPECT_GT(ones, 4700u);
  EXPECT_LT(ones, 5300u);
}

TEST(BinVec, RandomMasksTail) {
  util::Xoshiro256 rng(11);
  const auto v = BinVec::random(70, rng);  // 6 tail bits in word 1
  EXPECT_EQ(v.words()[1] >> 6, 0u);
}

TEST(BinVec, HammingBasics) {
  BinVec a(128), b(128);
  EXPECT_EQ(hamming(a, b), 0u);
  a.set(5, true);
  b.set(100, true);
  EXPECT_EQ(hamming(a, b), 2u);
  b.set(5, true);
  EXPECT_EQ(hamming(a, b), 1u);
}

TEST(BinVec, SimilarityIdentityAndComplement) {
  util::Xoshiro256 rng(3);
  auto a = BinVec::random(2048, rng);
  EXPECT_DOUBLE_EQ(similarity(a, a), 1.0);
  auto b = a;
  b.invert();
  EXPECT_DOUBLE_EQ(similarity(a, b), 0.0);
}

TEST(BinVec, RandomPairNearHalfDistance) {
  util::Xoshiro256 rng(42);
  const std::size_t d = 10000;
  const auto a = BinVec::random(d, rng);
  const auto b = BinVec::random(d, rng);
  const double sim = similarity(a, b);
  EXPECT_NEAR(sim, 0.5, 0.03);  // concentration of measure
}

TEST(BinVec, BindIsInvolutive) {
  util::Xoshiro256 rng(5);
  const auto a = BinVec::random(512, rng);
  const auto key = BinVec::random(512, rng);
  auto bound = bind(a, key);
  EXPECT_NE(bound, a);
  bound.bind(key);  // unbind
  EXPECT_EQ(bound, a);
}

TEST(BinVec, BindPreservesDistance) {
  util::Xoshiro256 rng(6);
  const auto a = BinVec::random(4096, rng);
  const auto b = BinVec::random(4096, rng);
  const auto key = BinVec::random(4096, rng);
  EXPECT_EQ(hamming(a, b), hamming(bind(a, key), bind(b, key)));
}

TEST(BinVec, InvertFlipsEverything) {
  BinVec v(100);
  v.set(10, true);
  v.invert();
  EXPECT_EQ(v.count_ones(), 99u);
  EXPECT_FALSE(v.get(10));
  // Tail stays clean.
  EXPECT_EQ(v.words()[1] >> 36, 0u);
}

TEST(BinVec, RotationPreservesPopcountAndRoundTrips) {
  util::Xoshiro256 rng(9);
  const auto v = BinVec::random(300, rng);
  const auto r = v.rotated(37);
  EXPECT_EQ(r.count_ones(), v.count_ones());
  EXPECT_EQ(r.rotated(300 - 37), v);
  EXPECT_EQ(v.rotated(0), v);
  EXPECT_EQ(v.rotated(300), v);
}

TEST(BinVec, HammingRangeMatchesBitLoop) {
  util::Xoshiro256 rng(13);
  const std::size_t d = 517;  // awkward non-word-aligned size
  const auto a = BinVec::random(d, rng);
  const auto b = BinVec::random(d, rng);
  const std::size_t cases[][2] = {
      {0, d}, {0, 1}, {63, 65}, {64, 128}, {100, 101}, {3, 517}, {200, 200}};
  for (const auto& [lo, hi] : cases) {
    std::size_t expected = 0;
    for (std::size_t i = lo; i < hi; ++i) expected += a.get(i) != b.get(i);
    EXPECT_EQ(hamming_range(a, b, lo, hi), expected)
        << "range [" << lo << ", " << hi << ")";
  }
}

TEST(BinVec, ChunksSumToTotalHamming) {
  util::Xoshiro256 rng(17);
  const std::size_t d = 10000;
  const auto a = BinVec::random(d, rng);
  const auto b = BinVec::random(d, rng);
  const std::size_t m = 37;  // chunk count that does not divide d
  std::size_t total = 0;
  for (std::size_t c = 0; c < m; ++c) {
    total += hamming_range(a, b, c * d / m, (c + 1) * d / m);
  }
  EXPECT_EQ(total, hamming(a, b));
}

class BinVecDimensions : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BinVecDimensions, TailInvariantHolds) {
  const std::size_t d = GetParam();
  util::Xoshiro256 rng(d);
  auto v = BinVec::random(d, rng);
  v.invert();
  const std::size_t tail = d & 63;
  if (tail != 0) {
    EXPECT_EQ(v.words().back() >> tail, 0u) << "dimension " << d;
  }
  EXPECT_EQ(v.count_ones() + BinVec::random(d, rng).bind(v).dimension() -
                v.dimension(),
            v.count_ones());
}

TEST_P(BinVecDimensions, SelfSimilarityIsOne) {
  const std::size_t d = GetParam();
  util::Xoshiro256 rng(d * 31 + 1);
  const auto v = BinVec::random(d, rng);
  EXPECT_DOUBLE_EQ(similarity(v, v), 1.0);
}

INSTANTIATE_TEST_SUITE_P(VariousDimensions, BinVecDimensions,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 1000,
                                           4096, 10000));

}  // namespace
}  // namespace robusthd::hv
