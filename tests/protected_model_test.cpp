// Tests for the SECDED-protected model deployment.
#include "robusthd/core/protected_model.hpp"

#include <gtest/gtest.h>

#include "robusthd/data/synthetic.hpp"
#include "robusthd/core/hdc_classifier.hpp"
#include "robusthd/fault/injector.hpp"

namespace robusthd::core {
namespace {

model::HdcModel small_model() {
  const auto spec = data::scaled(data::dataset_by_name("PAMAP"), 300, 100);
  const auto split = data::make_synthetic(spec);
  HdcClassifierConfig config;
  config.encoder.dimension = 2000;
  return HdcClassifier::train(split.train, config).model();
}

TEST(EccProtectedModel, CleanScrubIsIdentity) {
  auto model = small_model();
  const auto snapshot = model;
  EccProtectedModel protect(model);
  const auto report = protect.scrub_and_refresh();
  EXPECT_EQ(report.corrected, 0u);
  EXPECT_EQ(report.uncorrectable, 0u);
  for (std::size_t c = 0; c < model.num_classes(); ++c) {
    EXPECT_EQ(model.class_vector(c).planes[0],
              snapshot.class_vector(c).planes[0]);
  }
}

TEST(EccProtectedModel, StorageCarriesOverhead) {
  auto model = small_model();
  EccProtectedModel protect(model);
  std::size_t raw_bits = 0;
  for (const auto& region : model.memory_regions()) {
    raw_bits += region.bit_count();
  }
  EXPECT_GT(protect.stored_bits(), raw_bits);
  // SECDED(72,64): exactly 12.5% on the padded words.
  EXPECT_NEAR(static_cast<double>(protect.stored_bits()) /
                  static_cast<double>(raw_bits),
              1.125, 0.01);
}

TEST(EccProtectedModel, RepairsTraceLevelErrors) {
  auto model = small_model();
  const auto snapshot = model;
  EccProtectedModel protect(model);
  util::Xoshiro256 rng(1);
  auto regions = protect.memory_regions();
  fault::BitFlipInjector::inject_bit_errors(regions, 0.0003, rng);
  const auto report = protect.scrub_and_refresh();
  EXPECT_GT(report.corrected, 0u);
  EXPECT_EQ(report.uncorrectable, 0u);
  // Model fully restored.
  for (std::size_t c = 0; c < model.num_classes(); ++c) {
    EXPECT_EQ(hv::hamming_range(model.class_vector(c).planes[0],
                                snapshot.class_vector(c).planes[0], 0,
                                model.dimension()),
              0u);
  }
}

TEST(EccProtectedModel, PercentBerLeavesResidualDamage) {
  auto model = small_model();
  const auto snapshot = model;
  EccProtectedModel protect(model);
  util::Xoshiro256 rng(2);
  auto regions = protect.memory_regions();
  fault::BitFlipInjector::inject_bit_errors(regions, 0.04, rng);
  const auto report = protect.scrub_and_refresh();
  EXPECT_GT(report.uncorrectable, report.clean / 4);
  std::size_t residual = 0;
  for (std::size_t c = 0; c < model.num_classes(); ++c) {
    residual += hv::hamming_range(model.class_vector(c).planes[0],
                                  snapshot.class_vector(c).planes[0], 0,
                                  model.dimension());
  }
  EXPECT_GT(residual, 0u);
}

TEST(EccProtectedModel, AttackSurfaceIncludesChecks) {
  auto model = small_model();
  EccProtectedModel protect(model);
  const auto regions = protect.memory_regions();
  // One data + one check region per (class, plane).
  EXPECT_EQ(regions.size(), 2 * model.num_classes());
  std::size_t check_bits = 0;
  for (const auto& region : regions) {
    if (region.name.find("check") != std::string::npos) {
      check_bits += region.bit_count();
    }
  }
  EXPECT_GT(check_bits, 0u);
}

}  // namespace
}  // namespace robusthd::core
