// Tests for the deterministic random-number substrate.
#include "robusthd/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace robusthd::util {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(42), b(42), c(43);
  const auto a1 = a.next();
  EXPECT_EQ(a1, b.next());
  EXPECT_NE(a1, c.next());
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    ASSERT_GE(u, -2.0);
    ASSERT_LT(u, 3.0);
  }
}

TEST(Xoshiro256, BelowIsUnbiased) {
  Xoshiro256 rng(5);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (const auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(Xoshiro256, BelowZeroReturnsZero) {
  Xoshiro256 rng(6);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, RangeInclusive) {
  Xoshiro256 rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Xoshiro256, BernoulliFrequency) {
  Xoshiro256 rng(8);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Xoshiro256, NormalMomentsMatch) {
  Xoshiro256 rng(9);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Xoshiro256, NormalScaleShift) {
  Xoshiro256 rng(10);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Xoshiro256, FillRandomizesWords) {
  Xoshiro256 rng(11);
  std::vector<std::uint64_t> words(64, 0);
  rng.fill(words);
  std::size_t nonzero = 0;
  for (const auto w : words) nonzero += (w != 0);
  EXPECT_GT(nonzero, 60u);
}

TEST(Xoshiro256, ForkDecorrelates) {
  Xoshiro256 a(12);
  auto b = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Shuffle, IsAPermutation) {
  Xoshiro256 rng(13);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto sorted = v;
  shuffle(std::span<int>(v), rng);
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));  // overwhelmingly likely
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Shuffle, HandlesDegenerateSizes) {
  Xoshiro256 rng(14);
  std::vector<int> empty;
  shuffle(std::span<int>(empty), rng);
  std::vector<int> one{5};
  shuffle(std::span<int>(one), rng);
  EXPECT_EQ(one[0], 5);
}

}  // namespace
}  // namespace robusthd::util
