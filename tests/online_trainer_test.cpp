// Tests for the OnlineHD-style single-pass trainer.
#include "robusthd/model/online_trainer.hpp"

#include <gtest/gtest.h>

#include "robusthd/util/rng.hpp"

namespace robusthd::model {
namespace {

constexpr std::size_t kDim = 2048;

struct Stream {
  std::vector<hv::BinVec> samples;
  std::vector<int> labels;
};

Stream make_stream(std::size_t classes, std::size_t per_class, double noise,
                   std::uint64_t seed) {
  Stream s;
  util::Xoshiro256 rng(seed);
  std::vector<hv::BinVec> prototypes;
  for (std::size_t c = 0; c < classes; ++c) {
    prototypes.push_back(hv::BinVec::random(kDim, rng));
  }
  std::vector<std::size_t> order;
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) order.push_back(c);
  }
  util::shuffle(std::span<std::size_t>(order), rng);
  for (const auto c : order) {
    auto v = prototypes[c];
    for (std::size_t d = 0; d < kDim; ++d) {
      if (rng.bernoulli(noise)) v.flip(d);
    }
    s.samples.push_back(std::move(v));
    s.labels.push_back(static_cast<int>(c));
  }
  return s;
}

TEST(OnlineTrainer, LearnsInOnePass) {
  const auto stream = make_stream(5, 40, 0.15, 1);
  OnlineTrainer trainer(kDim, 5);
  for (std::size_t i = 0; i < stream.samples.size(); ++i) {
    trainer.observe(stream.samples[i], stream.labels[i]);
  }
  EXPECT_EQ(trainer.observed(), stream.samples.size());
  const auto model = trainer.deploy();
  EXPECT_GE(model.evaluate(stream.samples, stream.labels), 0.98);
}

TEST(OnlineTrainer, PrequentialAccuracyImproves) {
  const auto stream = make_stream(4, 100, 0.2, 2);
  OnlineTrainer trainer(kDim, 4);
  std::size_t early_correct = 0, late_correct = 0;
  const std::size_t n = stream.samples.size();
  for (std::size_t i = 0; i < n; ++i) {
    const int guess = trainer.observe(stream.samples[i], stream.labels[i]);
    const bool correct = guess == stream.labels[i];
    if (i < n / 4) early_correct += correct;
    if (i >= 3 * n / 4) late_correct += correct;
  }
  EXPECT_GT(late_correct, early_correct);
  EXPECT_GT(late_correct, (n / 4) * 9 / 10);  // >90% by the end
}

TEST(OnlineTrainer, FamiliarSamplesStopUpdating) {
  // Feeding the exact same sample repeatedly: after it is absorbed, the
  // (1 - similarity) weight goes to ~0 and mistakes stay at <=1.
  util::Xoshiro256 rng(3);
  const auto v = hv::BinVec::random(kDim, rng);
  OnlineTrainer trainer(kDim, 2);
  for (int i = 0; i < 50; ++i) trainer.observe(v, 0);
  EXPECT_LE(trainer.mistakes(), 1u);
  EXPECT_EQ(trainer.deploy().predict(v), 0);
}

TEST(OnlineTrainer, DeployedPrecisionMatchesConfig) {
  OnlineTrainer::Config config;
  config.precision_bits = 2;
  const auto stream = make_stream(3, 10, 0.1, 4);
  OnlineTrainer trainer(kDim, 3, config);
  for (std::size_t i = 0; i < stream.samples.size(); ++i) {
    trainer.observe(stream.samples[i], stream.labels[i]);
  }
  const auto model = trainer.deploy();
  EXPECT_EQ(model.precision_bits(), 2u);
  EXPECT_EQ(model.class_vector(0).planes.size(), 2u);
}

TEST(OnlineTrainer, ComparableToBatchOnEasyStream) {
  const auto stream = make_stream(4, 50, 0.1, 5);
  OnlineTrainer trainer(kDim, 4);
  for (std::size_t i = 0; i < stream.samples.size(); ++i) {
    trainer.observe(stream.samples[i], stream.labels[i]);
  }
  const auto online = trainer.deploy();
  const auto batch =
      HdcModel::train(stream.samples, stream.labels, 4, {});
  const auto test = make_stream(4, 20, 0.1, 6);
  // Same prototypes are regenerated only with the same seed; evaluate on
  // the training stream instead (both should be near-perfect).
  EXPECT_GE(online.evaluate(stream.samples, stream.labels),
            batch.evaluate(stream.samples, stream.labels) - 0.02);
  (void)test;
}

}  // namespace
}  // namespace robusthd::model
