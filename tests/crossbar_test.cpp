// Tests for the functional MAGIC-NOR crossbar: gate truth tables,
// arithmetic correctness, and cost-model consistency.
#include "robusthd/pim/crossbar.hpp"

#include <gtest/gtest.h>

#include "robusthd/util/rng.hpp"

namespace robusthd::pim {
namespace {

const std::size_t kRow = 0;
const std::size_t kRows[] = {0};

TEST(Crossbar, PlainReadWrite) {
  Crossbar xbar(4, 8);
  EXPECT_FALSE(xbar.read(2, 3));
  xbar.write(2, 3, true);
  EXPECT_TRUE(xbar.read(2, 3));
  EXPECT_EQ(xbar.cell_writes(2, 3), 1u);
  EXPECT_EQ(xbar.total_writes(), 1u);
}

TEST(Crossbar, NorTruthTable) {
  Crossbar xbar(1, 8);
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      xbar.write(kRow, 0, a);
      xbar.write(kRow, 1, b);
      const std::size_t in[] = {0, 1};
      xbar.nor(in, 2, kRows);
      EXPECT_EQ(xbar.read(kRow, 2), !(a || b)) << a << "," << b;
    }
  }
}

TEST(Crossbar, NorIsRowParallel) {
  Crossbar xbar(8, 4);
  for (std::size_t r = 0; r < 8; ++r) xbar.write(r, 0, (r & 1) != 0);
  std::size_t rows[8];
  for (std::size_t r = 0; r < 8; ++r) rows[r] = r;
  const std::size_t in[] = {0};
  const auto steps_before = xbar.nor_steps();
  xbar.nor(in, 1, rows);
  EXPECT_EQ(xbar.nor_steps(), steps_before + 1);  // one step, all rows
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_EQ(xbar.read(r, 1), (r & 1) == 0);
  }
}

TEST(Crossbar, GateTruthTables) {
  Crossbar xbar(1, 16);
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      xbar.write(kRow, 0, a);
      xbar.write(kRow, 1, b);
      xbar.op_not(0, 2, kRows);
      EXPECT_EQ(xbar.read(kRow, 2), !a);
      xbar.op_and(0, 1, 3, 10, 11, kRows);
      EXPECT_EQ(xbar.read(kRow, 3), a && b);
      xbar.op_xor(0, 1, 4, 10, 11, 12, kRows);
      EXPECT_EQ(xbar.read(kRow, 4), a != b);
    }
  }
}

TEST(Crossbar, GateCostsMatchAlgebra) {
  Crossbar xbar(1, 16);
  xbar.write(kRow, 0, true);
  xbar.write(kRow, 1, false);
  xbar.reset_counters();
  xbar.op_not(0, 2, kRows);
  EXPECT_EQ(xbar.nor_steps(), kNorsPerNot);
  xbar.reset_counters();
  xbar.op_and(0, 1, 3, 10, 11, kRows);
  EXPECT_EQ(xbar.nor_steps(), kNorsPerAnd);
  xbar.reset_counters();
  xbar.op_xor(0, 1, 4, 10, 11, 12, kRows);
  EXPECT_EQ(xbar.nor_steps(), kNorsPerXor);
}

TEST(Crossbar, FullAdderTruthTable) {
  Crossbar xbar(1, 20);
  const std::size_t scratch[] = {10, 11, 12, 13, 14, 15, 16};
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      for (const bool cin : {false, true}) {
        xbar.write(kRow, 0, a);
        xbar.write(kRow, 1, b);
        xbar.write(kRow, 2, cin);
        xbar.reset_counters();
        xbar.full_adder(0, 1, 2, 3, 4, scratch, kRows);
        const int sum = a + b + cin;
        EXPECT_EQ(xbar.read(kRow, 3), (sum & 1) != 0)
            << a << b << cin << " sum";
        EXPECT_EQ(xbar.read(kRow, 4), sum >= 2) << a << b << cin << " carry";
        EXPECT_EQ(xbar.nor_steps(), kNorsPerFullAdder);
      }
    }
  }
}

TEST(Crossbar, RippleAddMatchesIntegerAddition) {
  const std::size_t bits = 8;
  Crossbar xbar(1, 64);
  const std::size_t scratch[] = {40, 41, 42, 43, 44, 45, 46, 47};
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = static_cast<unsigned>(rng.below(256));
    const auto b = static_cast<unsigned>(rng.below(256));
    for (std::size_t i = 0; i < bits; ++i) {
      xbar.write(kRow, 0 + i, (a >> i) & 1);
      xbar.write(kRow, 8 + i, (b >> i) & 1);
    }
    xbar.reset_counters();
    xbar.ripple_add(0, 8, 16, 30, scratch, bits, kRows);
    unsigned sum = 0;
    for (std::size_t i = 0; i < bits; ++i) {
      sum |= static_cast<unsigned>(xbar.read(kRow, 16 + i)) << i;
    }
    EXPECT_EQ(sum, (a + b) & 0xFF) << a << "+" << b;
    EXPECT_EQ(xbar.nor_steps(), cost_add(bits).cycles);
  }
}

TEST(Crossbar, WearTrackingPerCell) {
  Crossbar xbar(2, 8);
  const std::size_t in[] = {0};
  const std::size_t both[] = {0, 1};
  xbar.nor(in, 5, both);
  xbar.nor(in, 5, both);
  EXPECT_EQ(xbar.cell_writes(0, 5), 2u);
  EXPECT_EQ(xbar.cell_writes(1, 5), 2u);
  EXPECT_EQ(xbar.cell_writes(0, 4), 0u);
  EXPECT_EQ(xbar.max_cell_writes(), 2u);
  EXPECT_EQ(xbar.total_writes(), 4u);
  xbar.reset_counters();
  EXPECT_EQ(xbar.total_writes(), 0u);
  EXPECT_EQ(xbar.max_cell_writes(), 0u);
}

}  // namespace
}  // namespace robusthd::pim
