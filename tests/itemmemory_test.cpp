// Tests for item memory: base hypervectors and the level chain.
#include "robusthd/hv/itemmemory.hpp"

#include <gtest/gtest.h>

namespace robusthd::hv {
namespace {

constexpr std::size_t kDim = 4096;

TEST(ItemMemory, ShapesAndDeterminism) {
  ItemMemory a(kDim, 20, 16, 7);
  EXPECT_EQ(a.dimension(), kDim);
  EXPECT_EQ(a.feature_count(), 20u);
  EXPECT_EQ(a.level_count(), 16u);
  ItemMemory b(kDim, 20, 16, 7);
  EXPECT_EQ(a.base(3), b.base(3));
  EXPECT_EQ(a.level(5), b.level(5));
  ItemMemory c(kDim, 20, 16, 8);
  EXPECT_NE(a.base(3), c.base(3));
}

TEST(ItemMemory, BaseVectorsQuasiOrthogonal) {
  ItemMemory memory(kDim, 10, 8, 1);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i + 1; j < 10; ++j) {
      const double sim = similarity(memory.base(i), memory.base(j));
      EXPECT_NEAR(sim, 0.5, 0.05) << i << " vs " << j;
    }
  }
}

TEST(ItemMemory, LevelChainMonotoneDistance) {
  const std::size_t levels = 16;
  ItemMemory memory(kDim, 4, levels, 2);
  // Distance from level 0 grows monotonically along the chain.
  std::size_t previous = 0;
  for (std::size_t j = 1; j < levels; ++j) {
    const std::size_t d = hamming(memory.level(0), memory.level(j));
    EXPECT_GT(d, previous) << "level " << j;
    previous = d;
  }
  // Extremes are ~D/2 apart.
  EXPECT_NEAR(static_cast<double>(previous), kDim / 2.0, kDim * 0.02);
}

TEST(ItemMemory, AdjacentLevelsAreClose) {
  const std::size_t levels = 32;
  ItemMemory memory(kDim, 4, levels, 3);
  for (std::size_t j = 0; j + 1 < levels; ++j) {
    const std::size_t d = hamming(memory.level(j), memory.level(j + 1));
    // Each step flips ~ D/2/(levels-1) bits.
    EXPECT_NEAR(static_cast<double>(d), kDim / 2.0 / (levels - 1),
                kDim * 0.01);
  }
}

TEST(ItemMemory, LevelIndexMapping) {
  ItemMemory memory(kDim, 4, 8, 4);
  EXPECT_EQ(memory.level_index(0.0f), 0u);
  EXPECT_EQ(memory.level_index(1.0f), 7u);
  EXPECT_EQ(memory.level_index(0.5f), 4u);  // rounds to nearest
  // Clamped outside [0, 1].
  EXPECT_EQ(memory.level_index(-5.0f), 0u);
  EXPECT_EQ(memory.level_index(5.0f), 7u);
}

}  // namespace
}  // namespace robusthd::hv
